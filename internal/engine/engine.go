// Package engine unifies the repo's counting engines behind one Miner
// interface and a cost-based Planner. The cross-algorithm equivalence suite
// proves the engines agree on every input; this package exploits that: the
// CLI, the experiment harness, the bench runner — and the server and sharded
// runner the roadmap plans — dispatch through a Miner looked up by name
// instead of special-casing each engine, and "-algo auto" becomes one
// planner call instead of hand-rolled selection logic per call site.
//
// The interface is deliberately the intersection the callers need, not the
// union of everything each engine can do: Mine/MineCtx returning the shared
// apriori.Result plus normalized Stats, with the optional surfaces
// (segmented out-of-core mining, checkpoint resume) expressed as capability
// flags plus narrowing interfaces (SegmentedMiner, Resumer) so a caller can
// discover support without a type switch per engine.
package engine

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/apriori"
	"repro/internal/ccpd"
	"repro/internal/db"
	"repro/internal/db/seg"
	"repro/internal/eclat"
	"repro/internal/hashtree"
	"repro/internal/obs"
	"repro/internal/sampling"
	"repro/internal/vbit"
)

// Caps declares what a Miner supports beyond plain Mine. Callers branch on
// capabilities, never on engine names.
type Caps struct {
	// Parallel engines honor Spec.Procs and accept an obs.Recorder.
	Parallel bool
	// Cancellation: MineCtx observes ctx cooperatively and returns the
	// partial result with a *robust.CanceledError.
	Cancellation bool
	// Checkpoint: Spec.Checkpoint writes per-iteration resumable snapshots.
	Checkpoint bool
	// Resume: the engine implements Resumer.
	Resume bool
	// Segmented: the engine implements SegmentedMiner (out-of-core path).
	Segmented bool
	// Exact engines return results bit-identical to sequential Apriori
	// (frequent sets, supports, ordering). The sampling engine's sample-side
	// mining is approximate by design, but its Mine returns the exact
	// full-database result, so every registered engine is currently exact.
	Exact bool
}

// Spec is the engine-independent description of one mining run. Every field
// an engine does not understand is ignored; the planner and the CLI fill it
// once and hand it to whichever Miner was selected.
type Spec struct {
	// Mining carries the shared level-wise knobs: support threshold
	// (fractional or absolute — resolved through apriori.CeilSupport),
	// MaxK, hash-tree shape, candidate batching.
	Mining apriori.Options
	// Procs is the worker count for parallel engines.
	Procs int
	// Counter, Balance, DBPart, ChunkSize are the CCPD-family knobs; the
	// vertical engines reuse ChunkSize as their cancellation-poll stride.
	Counter   hashtree.CounterMode
	Balance   ccpd.BalanceScheme
	DBPart    ccpd.DBPartition
	ChunkSize int
	// Obs wires the observability recorder through engines that support it.
	Obs *obs.Recorder
	// Checkpoint enables per-iteration snapshots on engines with Caps.Checkpoint.
	Checkpoint string
	// MemBudget caps resident decoded-segment bytes on the segmented path
	// (0 = double-buffered prefetch).
	MemBudget int64
	// SampleFraction and SupportSlack parameterize the sampling engine
	// (0 values take the package defaults: 0.1 and 0.9).
	SampleFraction float64
	SupportSlack   float64
	// Seed feeds the sampling engine's random draw.
	Seed int64
}

// ccpdOptions lowers a Spec onto the CCPD option struct.
func (s Spec) ccpdOptions() ccpd.Options {
	return ccpd.Options{
		Options: s.Mining,
		Procs:   s.Procs, Counter: s.Counter, Balance: s.Balance,
		DBPart: s.DBPart, ChunkSize: s.ChunkSize,
		Obs: s.Obs, Checkpoint: s.Checkpoint,
	}
}

// vbitOptions lowers a Spec onto the vertical-bitmap option struct.
func (s Spec) vbitOptions() vbit.Options {
	return vbit.Options{
		MinSupport: s.Mining.MinSupport, AbsSupport: s.Mining.AbsSupport,
		MaxK: s.Mining.MaxK, Procs: s.Procs, ChunkStride: s.ChunkSize,
		Obs: s.Obs,
	}
}

// Stats is the normalized run summary every Miner returns: total and
// counting-phase wall clock, plus the engine's raw stats for callers that
// want the full detail (the CLI's -v output, the bench harness).
type Stats struct {
	EngineName string
	Total      time.Duration
	Count      time.Duration

	// Exactly one of the following is non-nil for engines that expose a
	// detailed model; all may be nil (seq, eclat).
	CCPD          *ccpd.Stats
	VBit          *vbit.Stats
	VBitSegmented *vbit.SegmentedStats
	// Pipeline is the out-of-core prefetch accounting when the run was
	// segmented (also reachable through CCPD/VBitSegmented).
	Pipeline *seg.PipelineStats
	// Sampling carries the sample-vs-full accuracy for the sampling engine.
	Sampling *sampling.Accuracy
}

// Miner is the unified engine interface. Implementations are stateless
// values; one Miner serves any number of concurrent runs.
type Miner interface {
	// Name is the registry key and the CLI's -algo spelling.
	Name() string
	Caps() Caps
	// Mine runs to completion on an in-memory database.
	Mine(d *db.Database, s Spec) (*apriori.Result, *Stats, error)
	// MineCtx is Mine under a context; engines without Caps.Cancellation
	// ignore the context.
	MineCtx(ctx context.Context, d *db.Database, s Spec) (*apriori.Result, *Stats, error)
}

// SegmentedMiner is implemented by engines with an out-of-core path over a
// segmented columnar store.
type SegmentedMiner interface {
	Miner
	MineSegmented(ctx context.Context, r *seg.Reader, s Spec) (*apriori.Result, *Stats, error)
}

// Resumer is implemented by engines that can continue a checkpointed run.
type Resumer interface {
	Miner
	Resume(ctx context.Context, checkpointPath string, d *db.Database, s Spec) (*apriori.Result, *Stats, error)
}

// --- Registry ---

var registry = map[string]Miner{}

// register panics on duplicates: the registry is assembled in init and a
// collision is a programming error.
func register(m Miner) {
	if _, dup := registry[m.Name()]; dup {
		panic("engine: duplicate registration of " + m.Name())
	}
	registry[m.Name()] = m
}

// Lookup returns the Miner registered under name.
func Lookup(name string) (Miner, bool) {
	m, ok := registry[name]
	return m, ok
}

// Names lists the registered engines, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AsSegmented narrows a Miner to its out-of-core surface.
func AsSegmented(m Miner) (SegmentedMiner, bool) {
	sm, ok := m.(SegmentedMiner)
	return sm, ok
}

// AsResumer narrows a Miner to its checkpoint-resume surface.
func AsResumer(m Miner) (Resumer, bool) {
	r, ok := m.(Resumer)
	return r, ok
}

func init() {
	register(seqMiner{})
	register(ccpdMiner{})
	register(pccdMiner{})
	register(eclatMiner{})
	register(vbitMiner{})
	register(samplingMiner{})
}

// --- Adapters ---

// seqMiner is sequential Apriori (internal/apriori).
type seqMiner struct{}

func (seqMiner) Name() string { return "seq" }
func (seqMiner) Caps() Caps   { return Caps{Exact: true} }
func (m seqMiner) Mine(d *db.Database, s Spec) (*apriori.Result, *Stats, error) {
	return m.MineCtx(context.Background(), d, s)
}
func (seqMiner) MineCtx(_ context.Context, d *db.Database, s Spec) (*apriori.Result, *Stats, error) {
	t0 := time.Now()
	res, err := apriori.Mine(d, s.Mining)
	if err != nil {
		return nil, nil, err
	}
	return res, &Stats{EngineName: "seq", Total: time.Since(t0)}, nil
}

// ccpdMiner is the Common Candidate Partitioned Database engine, with
// checkpoint/resume and the segmented out-of-core streaming path.
type ccpdMiner struct{}

func (ccpdMiner) Name() string { return "ccpd" }
func (ccpdMiner) Caps() Caps {
	return Caps{Parallel: true, Cancellation: true, Checkpoint: true, Resume: true, Segmented: true, Exact: true}
}
func (m ccpdMiner) Mine(d *db.Database, s Spec) (*apriori.Result, *Stats, error) {
	return m.MineCtx(context.Background(), d, s)
}
func (ccpdMiner) MineCtx(ctx context.Context, d *db.Database, s Spec) (*apriori.Result, *Stats, error) {
	res, st, err := ccpd.MineCtx(ctx, d, s.ccpdOptions())
	return res, ccpdStats("ccpd", st), err
}
func (ccpdMiner) MineSegmented(ctx context.Context, r *seg.Reader, s Spec) (*apriori.Result, *Stats, error) {
	res, st, err := ccpd.MineSegmentedCtx(ctx, r, ccpd.SegmentedOptions{
		Options: s.ccpdOptions(), MemBudget: s.MemBudget,
	})
	return res, ccpdStats("ccpd", st), err
}
func (ccpdMiner) Resume(ctx context.Context, path string, d *db.Database, s Spec) (*apriori.Result, *Stats, error) {
	res, st, err := ccpd.Resume(ctx, path, d, s.ccpdOptions())
	return res, ccpdStats("ccpd", st), err
}

func ccpdStats(name string, st *ccpd.Stats) *Stats {
	if st == nil {
		return nil
	}
	return &Stats{
		EngineName: name, Total: st.Total, Count: st.TotalCount(),
		CCPD: st, Pipeline: st.OutOfCore,
	}
}

// pccdMiner is the Partitioned Candidate Common Database variant.
type pccdMiner struct{}

func (pccdMiner) Name() string { return "pccd" }
func (pccdMiner) Caps() Caps   { return Caps{Parallel: true, Cancellation: true, Exact: true} }
func (m pccdMiner) Mine(d *db.Database, s Spec) (*apriori.Result, *Stats, error) {
	return m.MineCtx(context.Background(), d, s)
}
func (pccdMiner) MineCtx(ctx context.Context, d *db.Database, s Spec) (*apriori.Result, *Stats, error) {
	res, st, err := ccpd.MinePCCDCtx(ctx, d, s.ccpdOptions())
	return res, ccpdStats("pccd", st), err
}

// eclatMiner is the tidlist-intersection vertical engine.
type eclatMiner struct{}

func (eclatMiner) Name() string { return "eclat" }
func (eclatMiner) Caps() Caps   { return Caps{Parallel: true, Cancellation: true, Exact: true} }
func (m eclatMiner) Mine(d *db.Database, s Spec) (*apriori.Result, *Stats, error) {
	return m.MineCtx(context.Background(), d, s)
}
func (eclatMiner) MineCtx(ctx context.Context, d *db.Database, s Spec) (*apriori.Result, *Stats, error) {
	t0 := time.Now()
	res, err := eclat.MineCtx(ctx, d, eclat.Options{
		MinSupport: s.Mining.MinSupport, AbsSupport: s.Mining.AbsSupport,
		MaxK: s.Mining.MaxK, Procs: s.Procs,
	})
	if err != nil {
		return res, nil, err
	}
	return res, &Stats{EngineName: "eclat", Total: time.Since(t0)}, nil
}

// vbitMiner is the word-parallel TID-bitmap dEclat engine, with the
// level-wise segmented out-of-core path.
type vbitMiner struct{}

func (vbitMiner) Name() string { return "vbit" }
func (vbitMiner) Caps() Caps {
	return Caps{Parallel: true, Cancellation: true, Segmented: true, Exact: true}
}
func (m vbitMiner) Mine(d *db.Database, s Spec) (*apriori.Result, *Stats, error) {
	return m.MineCtx(context.Background(), d, s)
}
func (vbitMiner) MineCtx(ctx context.Context, d *db.Database, s Spec) (*apriori.Result, *Stats, error) {
	res, st, err := vbit.MineCtx(ctx, d, s.vbitOptions())
	if st == nil {
		return res, nil, err
	}
	return res, &Stats{EngineName: "vbit", Total: st.Total, Count: st.Count, VBit: st}, err
}
func (vbitMiner) MineSegmented(ctx context.Context, r *seg.Reader, s Spec) (*apriori.Result, *Stats, error) {
	res, st, err := vbit.MineSegmentedCtx(ctx, r, vbit.SegmentedOptions{
		Options: s.vbitOptions(), MemBudget: s.MemBudget,
	})
	if st == nil {
		return res, nil, err
	}
	return res, &Stats{
		EngineName: "vbit", Total: st.Total,
		VBitSegmented: st, Pipeline: &st.Pipeline,
	}, err
}

// samplingMiner runs the companion-work sampling evaluation: mine a uniform
// random sample at a slacked support, mine the full database, and report the
// agreement. Mine returns the exact full-database result (so the engine is
// safe anywhere an exact Miner is expected); the sample-side accuracy lands
// in Stats.Sampling.
type samplingMiner struct{}

func (samplingMiner) Name() string { return "sampling" }
func (samplingMiner) Caps() Caps   { return Caps{Exact: true} }
func (m samplingMiner) Mine(d *db.Database, s Spec) (*apriori.Result, *Stats, error) {
	return m.MineCtx(context.Background(), d, s)
}
func (samplingMiner) MineCtx(_ context.Context, d *db.Database, s Spec) (*apriori.Result, *Stats, error) {
	t0 := time.Now()
	acc, res, err := sampling.Evaluate(d, sampling.Options{
		Fraction: s.SampleFraction, SupportSlack: s.SupportSlack,
		Mining: s.Mining, Seed: s.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	return res, &Stats{EngineName: "sampling", Total: time.Since(t0), Sampling: &acc}, nil
}

// Dispatch looks up name and runs the spec against the given source: an
// in-memory database, or a segmented reader for engines with an out-of-core
// path. Exactly one of d and r must be non-nil. It is the single entry point
// the CLI and harnesses use in place of per-engine switch statements.
func Dispatch(ctx context.Context, name string, d *db.Database, r *seg.Reader, s Spec) (*apriori.Result, *Stats, error) {
	m, ok := Lookup(name)
	if !ok {
		return nil, nil, fmt.Errorf("engine: unknown engine %q (have %v)", name, Names())
	}
	if r != nil {
		sm, ok := AsSegmented(m)
		if !ok {
			return nil, nil, fmt.Errorf("engine: %s has no out-of-core path; segmented stores mine with %v", name, SegmentedNames())
		}
		return sm.MineSegmented(ctx, r, s)
	}
	return m.MineCtx(ctx, d, s)
}

// SegmentedNames lists the engines with an out-of-core path, sorted.
func SegmentedNames() []string {
	var out []string
	for n, m := range registry {
		if m.Caps().Segmented {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
