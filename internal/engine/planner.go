// The cost-based planner: pick engine + DB partition mode + chunk size from
// database statistics (density, skew, size — the same axes internal/gen
// parameterizes its workloads with), the GreedySchedule work model, and the
// available memory budget. It replaces the two hand-rolled "-algo auto"
// selection sites that used to live in cmd/apriori — one of which
// characterized only segment 0 of a segmented store and ignored -mem-budget
// entirely, happily selecting the vertical engine when its bitmap arena
// could never fit the budget.
package engine

import (
	"fmt"

	"repro/internal/ccpd"
	"repro/internal/db"
	"repro/internal/db/seg"
	"repro/internal/sched"
	"repro/internal/vbit"
)

// DBInfo is everything the planner knows about a database: the O(1)
// aggregate statistics the density-based selector already used, plus a
// transaction-length skew measurement and, for segmented stores, the store
// geometry the out-of-core cost terms need.
type DBInfo struct {
	vbit.DBStats
	// TotalItems is the total item-occurrence count (= Transactions·AvgLen);
	// it is the unit of horizontal counting work.
	TotalItems int64
	// TailMass is the fraction of all item occurrences carried by
	// transactions longer than 2× the mean — near zero for Poisson-shaped
	// uniform workloads (~1%), large for planted heavy tails (~30% at the
	// generator's SkewFrac=0.05, SkewMult=8).
	TailMass float64
	// TailTx is the fraction of transactions longer than 2× the mean.
	TailTx float64
	// Segmented geometry (zero for in-RAM databases).
	Segmented       bool
	NumSegments     int
	MaxSegmentTx    int
	MaxSegmentBytes int64
}

// Characterize measures an in-memory database: the aggregate statistics are
// O(1) reads of stored totals; the skew terms take one pass over the
// transaction-length offsets (no item data is touched).
func Characterize(d *db.Database) DBInfo {
	info := DBInfo{DBStats: vbit.Characterize(d), TotalItems: d.TotalItems()}
	cut := 2 * info.AvgLen
	var tailItems int64
	tailTx := 0
	for i := 0; i < d.Len(); i++ {
		if n := len(d.Items(i)); float64(n) > cut {
			tailItems += int64(n)
			tailTx++
		}
	}
	if info.TotalItems > 0 {
		info.TailMass = float64(tailItems) / float64(info.TotalItems)
	}
	if d.Len() > 0 {
		info.TailTx = float64(tailTx) / float64(d.Len())
	}
	return info
}

// CharacterizeReader measures a segmented store. Unlike the old segment-0
// sampling, the aggregate statistics (transaction count, universe, average
// length, density) come from the store header and are exact for the whole
// store. The skew terms are measured over the first and last segments: the
// generator plants its heavy tail at the end of the transaction stream, so
// sampling only the head (the old bug) reads a skewed store as uniform.
func CharacterizeReader(r *seg.Reader) (DBInfo, error) {
	info := DBInfo{
		Segmented:       true,
		NumSegments:     r.NumSegments(),
		MaxSegmentBytes: r.MaxSegmentBytes(),
		TotalItems:      r.TotalItems(),
	}
	info.Transactions = int(r.NumTx()) //armlint:narrowok int is 64-bit on every supported target, so the int64 transaction count converts losslessly
	info.NumItems = r.NumItems()
	if n := r.NumTx(); n > 0 {
		info.AvgLen = float64(r.TotalItems()) / float64(n)
	}
	if info.NumItems > 0 {
		info.Density = info.AvgLen / float64(info.NumItems)
	}
	for i := 0; i < r.NumSegments(); i++ {
		if tx := int(r.Segment(i).NumTx); tx > info.MaxSegmentTx {
			info.MaxSegmentTx = tx
		}
	}

	samples := []int{0}
	if last := r.NumSegments() - 1; last > 0 {
		samples = append(samples, last)
	}
	cut := 2 * info.AvgLen
	var tailItems, sampleItems int64
	tailTx, sampleTx := 0, 0
	var buf seg.Buffer
	for _, si := range samples {
		sd, err := r.LoadSegment(si, &buf)
		if err != nil {
			return info, err
		}
		sampleTx += sd.Len()
		sampleItems += sd.TotalItems()
		for i := 0; i < sd.Len(); i++ {
			if n := len(sd.Items(i)); float64(n) > cut {
				tailItems += int64(n)
				tailTx++
			}
		}
	}
	if sampleItems > 0 {
		info.TailMass = float64(tailItems) / float64(sampleItems)
	}
	if sampleTx > 0 {
		info.TailTx = float64(tailTx) / float64(sampleTx)
	}
	return info, nil
}

// Estimate is one candidate engine's projected cost and memory footprint —
// recorded in the Plan so a selection is auditable (and pinnable in tests)
// rather than an opaque verdict.
type Estimate struct {
	Engine string
	// Cost is the modelled counting work in item-touch units, normalized so
	// the two engines' models are comparable (see costs below).
	Cost int64
	// ArenaBytes is the projected peak resident footprint of the engine's
	// counting structures (the vertical engine's bitmap/tidlist arena; the
	// horizontal engine's streaming residency).
	ArenaBytes int64
	// Feasible is false when ArenaBytes exceeds the memory budget.
	Feasible bool
	Note     string
}

// Plan is the planner's decision: which engine, how to partition the
// database for counting, and at what chunk granularity, with the estimates
// that justified it.
type Plan struct {
	Engine    string
	Segmented bool
	DBPart    ccpd.DBPartition
	ChunkSize int
	// MemBudget echoes the budget the decision was made under, so downstream
	// dispatch (and the golden tests) see it.
	MemBudget int64
	// BlockModel/DynamicModel are the GreedySchedule-modelled parallel
	// counting times (max per-processor load) of the static block partition
	// and the dynamic chunk-claiming partition over the synthetic chunk-work
	// vector — the numbers behind the DBPart choice.
	BlockModel   int64
	DynamicModel int64
	Estimates    []Estimate
	Reason       string
}

// String renders the one-line decision summary the CLI prints.
func (p Plan) String() string {
	return fmt.Sprintf("engine=%s dbpart=%s chunk=%d (%s)", p.Engine, p.DBPart, p.ChunkSize, p.Reason)
}

// Planner holds the selection policy knobs. The zero value uses the
// calibrated defaults; construct with struct literals.
type Planner struct {
	// Procs is the worker count the partition model schedules for (default 4).
	Procs int
	// MemBudget caps resident bytes; 0 means unbudgeted (in-RAM runs) or
	// double-buffered (segmented runs), and disables the feasibility check
	// for in-RAM databases.
	MemBudget int64
	// CrossoverDensity is the density at which the vertical engine starts
	// beating the horizontal one (default vbit.DefaultCrossoverDensity,
	// calibrated by the density-sweep experiment).
	CrossoverDensity float64
	// TailMassThreshold is the TailMass above which the static block
	// partition is considered imbalanced and the dynamic modes compete
	// (default 0.08).
	TailMassThreshold float64
}

func (pl Planner) withDefaults() Planner {
	if pl.Procs <= 0 {
		pl.Procs = 4
	}
	if pl.CrossoverDensity <= 0 {
		pl.CrossoverDensity = vbit.DefaultCrossoverDensity
	}
	if pl.TailMassThreshold <= 0 {
		pl.TailMassThreshold = 0.08
	}
	return pl
}

// modelChunks is how many synthetic chunks the partition model schedules:
// enough resolution that a 5% heavy tail occupies whole chunks, small enough
// that planning stays trivially cheap.
const modelChunks = 64

// VBitArenaBytes projects the vertical engine's column-arena footprint from
// aggregate statistics under the uniform-density assumption the layout's
// own per-item rule refines at runtime: when the density clears the bitmap
// cutoff every column materializes as a ⌈D/64⌉-word bitmap, otherwise every
// column is a 4-byte-per-tid tidlist. txCount is the transaction span one
// layout covers — the whole database in RAM, one segment on the level-wise
// out-of-core path.
func VBitArenaBytes(info DBInfo, txCount int) int64 {
	if txCount <= 0 {
		return 0
	}
	scale := float64(txCount) / float64(max(1, info.Transactions))
	if info.Density >= vbit.DefaultDensityCutoff {
		words := int64(txCount+63) / 64
		return int64(info.NumItems) * words * 8
	}
	return int64(float64(info.TotalItems)*scale) * 4
}

// Plan picks the engine, partition mode and chunk size for a database.
//
// The engine choice compares two counting-cost models in item-touch units.
// The horizontal hash-tree engine streams every item occurrence once per
// iteration: cost = TotalItems. The vertical engine's per-pair probes touch
// bitmap words (D/64 per probe) or near-empty tidlists; normalizing its
// model against the horizontal one at the calibrated crossover density gives
// cost = TotalItems · (crossover/density) — equal at the crossover, cheaper
// for vbit above it, and degenerating (pointer chasing over near-empty
// columns) below it. This reproduces the density-based selector's decisions
// exactly while making them comparable numbers, and lets the memory budget
// veto a winner: when the vertical arena projection exceeds the budget the
// plan falls back to the (segmented) streaming CCPD engine, which counts
// through a bounded hash tree regardless of store size.
//
// The partition choice schedules a synthetic chunk-work vector — uniform
// work with the measured tail mass concentrated in the trailing TailTx
// chunks, mirroring where the generator plants its heavy tail — under the
// static block split and under sched.GreedySchedule (the deterministic model
// of the dynamic chunk-claiming modes). Stealing is selected when the
// dynamic model beats block by more than 5%; otherwise block's zero
// coordination overhead wins.
func (pl Planner) Plan(info DBInfo) Plan {
	pl = pl.withDefaults()
	p := Plan{Segmented: info.Segmented, DBPart: ccpd.PartitionBlock, ChunkSize: 256}

	// Engine choice: ccpd vs vbit cost models plus the budget veto.
	hcost := info.TotalItems
	ccpdEst := Estimate{
		Engine: "ccpd", Cost: hcost, Feasible: true,
		ArenaBytes: 2 * info.MaxSegmentBytes,
		Note:       "streams the store once per iteration through a bounded hash tree",
	}
	vcost := int64(0)
	feasibleV := info.Transactions > 0 && info.NumItems > 0 && info.Density > 0
	if feasibleV {
		vcost = int64(float64(hcost) * (pl.CrossoverDensity / info.Density))
	}
	vtx := info.Transactions
	vnote := "materializes every column in RAM"
	if info.Segmented {
		vtx = info.MaxSegmentTx
		vnote = "materializes one segment's columns per pass (level-wise)"
	}
	vbitEst := Estimate{
		Engine: "vbit", Cost: vcost,
		ArenaBytes: VBitArenaBytes(info, vtx) + info.MaxSegmentBytes,
		Feasible:   feasibleV, Note: vnote,
	}
	if pl.MemBudget > 0 && vbitEst.ArenaBytes > pl.MemBudget {
		vbitEst.Feasible = false
		vbitEst.Note = fmt.Sprintf("arena projection %d B exceeds budget %d B", vbitEst.ArenaBytes, pl.MemBudget)
	}
	p.Estimates = []Estimate{ccpdEst, vbitEst}

	switch {
	case !vbitEst.Feasible:
		p.Engine = "ccpd"
		p.Reason = "vbit infeasible: " + vbitEst.Note
	case vbitEst.Cost < ccpdEst.Cost:
		p.Engine = "vbit"
		p.Reason = fmt.Sprintf("density %.4f above crossover %.4f", info.Density, pl.CrossoverDensity)
	default:
		p.Engine = "ccpd"
		p.Reason = fmt.Sprintf("density %.4f below crossover %.4f", info.Density, pl.CrossoverDensity)
	}
	p.MemBudget = pl.MemBudget

	// Partition + chunk choice, from the GreedySchedule model of the
	// measured tail. Only the hash-tree engine family consumes DBPart; the
	// vertical engines reuse ChunkSize as their poll stride.
	work := syntheticChunkWork(info)
	p.BlockModel = blockModel(work, pl.Procs)
	p.DynamicModel = maxLoad(sched.GreedySchedule(work, pl.Procs))
	if info.TailMass >= pl.TailMassThreshold &&
		float64(p.DynamicModel) < 0.95*float64(p.BlockModel) {
		p.DBPart = ccpd.PartitionStealing
		p.ChunkSize = clampInt(info.Transactions/(pl.Procs*16), 16, 256)
		p.Reason += fmt.Sprintf("; tail mass %.2f -> stealing (model %d vs block %d)",
			info.TailMass, p.DynamicModel, p.BlockModel)
	}
	return p
}

// syntheticChunkWork spreads the database's item occurrences over
// modelChunks chunks: uniform base load, with the measured tail mass
// concentrated in the trailing TailTx-fraction chunks (where the generator
// plants its heavy transactions).
func syntheticChunkWork(info DBInfo) []int64 {
	work := make([]int64, modelChunks)
	if info.TotalItems <= 0 {
		return work
	}
	tailChunks := int(info.TailTx*modelChunks + 0.5)
	if info.TailMass > 0 && tailChunks == 0 {
		tailChunks = 1
	}
	if tailChunks > modelChunks {
		tailChunks = modelChunks
	}
	base := float64(info.TotalItems) * (1 - info.TailMass) / float64(modelChunks-tailChunks)
	for i := range work {
		work[i] = int64(base)
	}
	if tailChunks > 0 {
		tail := float64(info.TotalItems) * info.TailMass / float64(tailChunks)
		for i := modelChunks - tailChunks; i < modelChunks; i++ {
			work[i] = int64(base + tail)
		}
	}
	return work
}

// blockModel is the max per-processor load of a contiguous equal-chunk split
// — the static block partition over the synthetic work vector.
func blockModel(work []int64, procs int) int64 {
	var worst int64
	for p := 0; p < procs; p++ {
		lo, hi := p*len(work)/procs, (p+1)*len(work)/procs
		var sum int64
		for _, w := range work[lo:hi] {
			sum += w
		}
		if sum > worst {
			worst = sum
		}
	}
	return worst
}

func maxLoad(loads []int64) int64 {
	var m int64
	for _, v := range loads {
		if v > m {
			m = v
		}
	}
	return m
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
