package engine

import (
	"path/filepath"
	"testing"

	"repro/internal/ccpd"
	"repro/internal/db/seg"
	"repro/internal/gen"
	"repro/internal/vbit"
)

// workloadShapes are the internal/gen reference shapes the planner goldens
// pin: one per axis the cost model decides on (density above/below the
// crossover, planted skew, and — separately below — segmented geometry).
var workloadShapes = map[string]gen.Params{
	// density ≈ 0.2: far above the 1/128 crossover, every column a bitmap.
	"dense": {N: 60, L: 30, T: 12, I: 4, D: 2000, Seed: 1},
	// density ≈ 0.003: below the crossover, vertical columns near-empty.
	"sparse": {N: 3200, L: 1600, T: 10, I: 4, D: 2000, Seed: 1},
	// the paper-default shape with the generator's heavy tail planted:
	// 5% of transactions draw their size from Poisson(8·T).
	"skewed": {T: 10, I: 4, D: 2000, Seed: 1, SkewFrac: 0.05, SkewMult: 8},
	// skew below the crossover: the one shape that wants ccpd AND stealing.
	"sparse-skewed": {N: 3200, L: 1600, T: 10, I: 4, D: 2000, Seed: 1, SkewFrac: 0.05, SkewMult: 8},
}

// plannedChoice is the pinned decision for one workload shape.
type plannedChoice struct {
	engine string
	dbpart ccpd.DBPartition
}

// TestPlannerGoldens pins the planner's decision for each workload shape and
// checks the decision is justified by the recorded estimates — the chosen
// engine must be the feasible one with the lower modelled cost, and a
// stealing partition must be backed by the GreedySchedule model beating the
// block model.
func TestPlannerGoldens(t *testing.T) {
	want := map[string]plannedChoice{
		"dense":         {engine: "vbit", dbpart: ccpd.PartitionBlock},
		"sparse":        {engine: "ccpd", dbpart: ccpd.PartitionBlock},
		"skewed":        {engine: "vbit", dbpart: ccpd.PartitionStealing},
		"sparse-skewed": {engine: "ccpd", dbpart: ccpd.PartitionStealing},
	}
	for name, params := range workloadShapes {
		d, err := gen.Generate(params)
		if err != nil {
			t.Fatal(err)
		}
		info := Characterize(d)
		plan := Planner{Procs: 4}.Plan(info)
		w := want[name]
		if plan.Engine != w.engine {
			t.Errorf("%s: planned engine %s, want %s (info %+v, reason %q)",
				name, plan.Engine, w.engine, info.DBStats, plan.Reason)
		}
		if plan.DBPart != w.dbpart {
			t.Errorf("%s: planned dbpart %s, want %s (tail mass %.3f, models block=%d dynamic=%d)",
				name, plan.DBPart, w.dbpart, info.TailMass, plan.BlockModel, plan.DynamicModel)
		}
		assertJustified(t, name, plan)
	}
}

// assertJustified checks a plan's internal consistency against its own
// recorded estimates.
func assertJustified(t *testing.T, label string, plan Plan) {
	t.Helper()
	ests := map[string]Estimate{}
	for _, e := range plan.Estimates {
		ests[e.Engine] = e
	}
	chosen, ok := ests[plan.Engine]
	if !ok {
		t.Errorf("%s: chosen engine %s has no recorded estimate", label, plan.Engine)
		return
	}
	if !chosen.Feasible {
		t.Errorf("%s: chosen engine %s marked infeasible: %s", label, plan.Engine, chosen.Note)
	}
	for _, e := range plan.Estimates {
		if e.Engine != plan.Engine && e.Feasible && e.Cost < chosen.Cost {
			t.Errorf("%s: %s (cost %d) was feasible and cheaper than chosen %s (cost %d)",
				label, e.Engine, e.Cost, plan.Engine, chosen.Cost)
		}
	}
	if plan.DBPart == ccpd.PartitionStealing && plan.DynamicModel >= plan.BlockModel {
		t.Errorf("%s: stealing chosen but dynamic model %d does not beat block %d",
			label, plan.DynamicModel, plan.BlockModel)
	}
}

// TestPlannerSegmented pins the segmented decisions: with exact whole-store
// statistics a dense store plans vbit when the budget fits its per-segment
// arena, and any store falls back to the streaming ccpd engine when the
// budget cannot hold the vertical arena. The old selector read only segment
// 0 and never looked at the budget at all.
func TestPlannerSegmented(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, p gen.Params, segTx int) *seg.Reader {
		t.Helper()
		d, err := gen.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".arseg")
		if err := seg.WriteDatabase(path, d, seg.WriterOptions{SegTx: segTx}); err != nil {
			t.Fatal(err)
		}
		r, err := seg.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		return r
	}

	dense := write("dense", workloadShapes["dense"], 500)
	info, err := CharacterizeReader(dense)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Segmented || info.NumSegments != 4 || info.Transactions != 2000 {
		t.Fatalf("dense store characterization off: %+v", info)
	}
	if plan := (Planner{Procs: 4}).Plan(info); plan.Engine != "vbit" {
		t.Errorf("dense segmented, no budget: engine %s, want vbit (%s)", plan.Engine, plan.Reason)
	}
	// A generous budget still fits the per-segment arena: stays vbit.
	if plan := (Planner{Procs: 4, MemBudget: 64 << 20}).Plan(info); plan.Engine != "vbit" {
		t.Errorf("dense segmented, 64M budget: engine %s, want vbit (%s)", plan.Engine, plan.Reason)
	}
	// A tiny budget can never hold the vertical arena: must fall back to the
	// streaming ccpd engine, never in-RAM vbit.
	tiny := Planner{Procs: 4, MemBudget: 4 << 10}.Plan(info)
	if tiny.Engine != "ccpd" {
		t.Errorf("dense segmented, 4K budget: engine %s, want ccpd fallback (%s)", tiny.Engine, tiny.Reason)
	}
	for _, e := range tiny.Estimates {
		if e.Engine == "vbit" && e.Feasible {
			t.Errorf("4K budget: vbit estimate still feasible (arena %d B)", e.ArenaBytes)
		}
	}
}

// TestPlannerSkewSampling guards the segment-0 half of the old bug: the
// generator plants its heavy tail at the END of the transaction stream, so a
// head-only sample reads a skewed store as uniform. CharacterizeReader
// samples the first and last segments and must see the tail.
func TestPlannerSkewSampling(t *testing.T) {
	d, err := gen.Generate(workloadShapes["skewed"])
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "skew.arseg")
	if err := seg.WriteDatabase(path, d, seg.WriterOptions{SegTx: 500}); err != nil {
		t.Fatal(err)
	}
	r, err := seg.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	info, err := CharacterizeReader(r)
	if err != nil {
		t.Fatal(err)
	}
	inRAM := Characterize(d)
	if info.TailMass < 0.5*inRAM.TailMass {
		t.Errorf("segmented skew sample missed the tail: TailMass %.3f vs in-RAM %.3f",
			info.TailMass, inRAM.TailMass)
	}
	if plan := (Planner{Procs: 4}).Plan(info); plan.DBPart != ccpd.PartitionStealing {
		t.Errorf("skewed segmented store: dbpart %s, want stealing (tail mass %.3f)",
			plan.DBPart, info.TailMass)
	}
	// Exactness of the O(1) aggregates: header-derived density must match
	// the in-RAM characterization (same data, same totals).
	if info.Density != inRAM.Density || info.Transactions != inRAM.Transactions {
		t.Errorf("segmented aggregates drifted: density %g/%g, tx %d/%d",
			info.Density, inRAM.Density, info.Transactions, inRAM.Transactions)
	}
}

// TestVBitArenaBytes pins the arena projection's two regimes against the
// layout's real materialization rule.
func TestVBitArenaBytes(t *testing.T) {
	dense := DBInfo{DBStats: vbit.DBStats{Transactions: 6400, NumItems: 100, AvgLen: 12, Density: 0.12}, TotalItems: 6400 * 12}
	// 6400 tx → 100 words of 8 bytes per bitmap, 100 items.
	if got, want := VBitArenaBytes(dense, 6400), int64(100*100*8); got != want {
		t.Errorf("dense arena = %d, want %d", got, want)
	}
	sparse := DBInfo{DBStats: vbit.DBStats{Transactions: 6400, NumItems: 100000, AvgLen: 10, Density: 0.0001}, TotalItems: 64000}
	if got, want := VBitArenaBytes(sparse, 6400), int64(64000*4); got != want {
		t.Errorf("sparse arena = %d, want %d", got, want)
	}
	// Segment-scaled: a quarter of the transactions projects a quarter of
	// the tidlist arena.
	if got, want := VBitArenaBytes(sparse, 1600), int64(16000*4); got != want {
		t.Errorf("scaled sparse arena = %d, want %d", got, want)
	}
}
