// Package gen reimplements the IBM Quest synthetic basket-data generator
// used by the paper's evaluation (Agrawal & Srikant 1994, Section 6 /
// Table 2 here). Data mimics retail transactions: L maximal potentially
// frequent itemsets of mean size I are drawn over N items, and D
// transactions of mean size T are assembled from (corrupted versions of)
// those maximal sets, so transaction and pattern sizes cluster around their
// means with a heavy-ish tail.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/db"
	"repro/internal/itemset"
)

// Params mirrors the published generator knobs.
type Params struct {
	N int // number of items (paper: 1000)
	L int // number of maximal potentially frequent itemsets (paper: 2000)
	I int // average size of the maximal potentially frequent itemsets
	T int // average transaction size
	D int // number of transactions

	// CorruptionMean is the per-pattern mean corruption level (fraction of a
	// pattern's items dropped when inserted into a transaction). The Quest
	// default is 0.5 with sd 0.1.
	CorruptionMean float64
	CorruptionSD   float64
	// Correlation is the fraction of items a pattern inherits from its
	// predecessor (exponential mean). Quest default 0.5.
	Correlation float64

	// SkewFrac plants a heavy tail for load-balance experiments: the last
	// SkewFrac fraction of transactions draw their size from
	// Poisson(T·SkewMult) instead of Poisson(T), so a block partition by
	// row count overloads the processors that own the tail. 0 (the default)
	// disables the knob and leaves the generated stream byte-identical to
	// earlier versions for the same seed.
	SkewFrac float64
	// SkewMult is the tail size multiplier; defaults to 8 when SkewFrac > 0.
	SkewMult float64

	// Seed makes generation reproducible.
	Seed int64
}

// Name renders the canonical dataset label, e.g. "T10.I4.D100K".
func (p Params) Name() string {
	d := p.D
	switch {
	case d >= 1000000 && d%1000000 == 0:
		return fmt.Sprintf("T%d.I%d.D%dM", p.T, p.I, d/1000000)
	case d >= 1000 && d%1000 == 0:
		return fmt.Sprintf("T%d.I%d.D%dK", p.T, p.I, d/1000)
	default:
		return fmt.Sprintf("T%d.I%d.D%d", p.T, p.I, d)
	}
}

func (p Params) withDefaults() Params {
	if p.N == 0 {
		p.N = 1000
	}
	if p.L == 0 {
		p.L = 2000
	}
	if p.CorruptionMean == 0 {
		p.CorruptionMean = 0.5
	}
	if p.CorruptionSD == 0 {
		p.CorruptionSD = 0.1
	}
	if p.Correlation == 0 {
		p.Correlation = 0.5
	}
	if p.SkewFrac > 0 && p.SkewMult <= 1 {
		p.SkewMult = 8
	}
	return p
}

// Validate rejects impossible parameter combinations.
func (p Params) Validate() error {
	p = p.withDefaults()
	if p.N < 1 || p.L < 1 || p.I < 1 || p.T < 1 || p.D < 0 {
		return fmt.Errorf("gen: N, L, I, T must be ≥1 and D ≥0 (got N=%d L=%d I=%d T=%d D=%d)", p.N, p.L, p.I, p.T, p.D)
	}
	if p.I > p.N {
		return fmt.Errorf("gen: average pattern size I=%d exceeds item universe N=%d", p.I, p.N)
	}
	if p.SkewFrac < 0 || p.SkewFrac > 1 {
		return fmt.Errorf("gen: SkewFrac=%g outside [0,1]", p.SkewFrac)
	}
	return nil
}

// pattern is one maximal potentially frequent itemset with its selection
// weight and corruption level.
type pattern struct {
	items      itemset.Itemset
	weight     float64
	cumWeight  float64 // prefix sum for roulette selection
	corruption float64
}

// Generator holds the pattern table; it can emit any number of databases.
type Generator struct {
	p        Params
	rng      *rand.Rand
	patterns []pattern
	totalW   float64
}

// New builds the pattern table per the Quest procedure.
func New(p Params) (*Generator, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{p: p, rng: rand.New(rand.NewSource(p.Seed))}
	g.buildPatterns()
	return g, nil
}

// poisson draws from Poisson(mean) by inversion; adequate for the small
// means used here (I, T ≤ ~30).
func poisson(rng *rand.Rand, mean float64) int {
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k // numerically unreachable guard
		}
	}
}

func (g *Generator) buildPatterns() {
	rng := g.rng
	p := g.p
	g.patterns = make([]pattern, p.L)
	var prev itemset.Itemset
	var cum float64
	for i := range g.patterns {
		size := poisson(rng, float64(p.I)-1) + 1 // ≥1, mean I
		if size > p.N {
			size = p.N
		}
		items := make(map[itemset.Item]bool, size)
		// Inherit a fraction of the previous pattern for cross-pattern
		// correlation.
		if len(prev) > 0 {
			frac := math.Min(1, rng.ExpFloat64()*p.Correlation)
			take := int(frac * float64(len(prev)))
			if take > size {
				take = size
			}
			perm := rng.Perm(len(prev))
			for _, idx := range perm[:take] {
				items[prev[idx]] = true
			}
		}
		for len(items) < size {
			items[itemset.Item(rng.Intn(p.N))] = true
		}
		flat := make(itemset.Itemset, 0, len(items))
		for it := range items {
			flat = append(flat, it)
		}
		sort.Slice(flat, func(a, b int) bool { return flat[a] < flat[b] })
		w := rng.ExpFloat64()
		corr := rng.NormFloat64()*p.CorruptionSD + p.CorruptionMean
		if corr < 0 {
			corr = 0
		}
		if corr > 1 {
			corr = 1
		}
		cum += w
		g.patterns[i] = pattern{items: flat, weight: w, cumWeight: cum, corruption: corr}
		prev = flat
	}
	g.totalW = cum
}

// pickPattern roulette-selects a pattern by weight.
func (g *Generator) pickPattern() *pattern {
	x := g.rng.Float64() * g.totalW
	lo, hi := 0, len(g.patterns)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.patterns[mid].cumWeight < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(g.patterns) {
		lo = len(g.patterns) - 1
	}
	return &g.patterns[lo]
}

// corrupt drops items from pat per its corruption level: while a uniform
// draw is below the level, one item is removed (the Quest procedure).
func (g *Generator) corrupt(pat *pattern, buf itemset.Itemset) itemset.Itemset {
	buf = append(buf[:0], pat.items...)
	for len(buf) > 0 && g.rng.Float64() < pat.corruption {
		idx := g.rng.Intn(len(buf))
		buf = append(buf[:idx], buf[idx+1:]...)
	}
	return buf
}

// Generate emits the full database in memory.
func (g *Generator) Generate() *db.Database {
	d := db.New(g.p.N)
	if err := g.GenerateTo(func(tid int64, items itemset.Itemset) error {
		d.Append(tid, items) // panics on arena overflow, like the historical path
		return nil
	}); err != nil {
		// The emit above never fails; GenerateTo itself has no other error.
		panic(err)
	}
	return d
}

// GenerateTo streams the database one transaction at a time: tids are 1..D
// in order, items sorted. The items slice is reused between calls — emit
// must copy anything it retains (db.TryAppend and seg.Writer.Append both
// copy). The rng draw sequence is identical to Generate's, so a seed
// produces the same data whether materialized or streamed; internal/gen can
// therefore fill a segmented store far larger than RAM. A returned emit
// error aborts generation.
func (g *Generator) GenerateTo(emit func(tid int64, items itemset.Itemset) error) error {
	p := g.p
	present := make([]bool, p.N)
	scratch := make(itemset.Itemset, 0, 64)
	tx := make(itemset.Itemset, 0, p.T*2)
	sorted := make(itemset.Itemset, 0, p.T*2)
	// The heavy tail starts at heavyFrom (== D with the knob off, so no
	// extra rng draws perturb existing seeds).
	heavyFrom := p.D
	if p.SkewFrac > 0 {
		heavyFrom = p.D - int(p.SkewFrac*float64(p.D))
	}
	for t := 0; t < p.D; t++ {
		mean := float64(p.T) - 1
		if t >= heavyFrom {
			mean = float64(p.T)*p.SkewMult - 1
		}
		size := poisson(g.rng, mean) + 1
		// A transaction holds distinct items, so a size beyond N could never
		// be reached (and the assembly loop would not terminate).
		if size > p.N {
			size = p.N
		}
		tx = tx[:0]
		for len(tx) < size {
			pat := g.pickPattern()
			frag := g.corrupt(pat, scratch)
			// If the fragment overflows the remaining budget, keep it anyway
			// half the time (Quest rule), else retry with another pattern.
			if len(tx)+len(frag) > size && g.rng.Float64() < 0.5 {
				break
			}
			for _, it := range frag {
				if !present[it] {
					present[it] = true
					tx = append(tx, it)
				}
			}
			if len(frag) == 0 {
				// Fully corrupted pattern: add one random item to guarantee
				// progress.
				it := itemset.Item(g.rng.Intn(p.N))
				if !present[it] {
					present[it] = true
					tx = append(tx, it)
				}
			}
		}
		if len(tx) == 0 {
			tx = append(tx, itemset.Item(g.rng.Intn(p.N)))
		}
		// Sorting a reusable buffer consumes no rng draws, so the stream stays
		// byte-identical to the historical materializing loop.
		sorted = append(sorted[:0], tx...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		if err := emit(int64(t+1), sorted); err != nil {
			return fmt.Errorf("gen: transaction %d: %w", t+1, err)
		}
		// Reset presence marks for the next transaction.
		for _, it := range tx {
			present[it] = false
		}
	}
	return nil
}

// Generate is the convenience one-shot entry point.
func Generate(p Params) (*db.Database, error) {
	g, err := New(p)
	if err != nil {
		return nil, err
	}
	return g.Generate(), nil
}

// Patterns exposes the planted maximal potential frequent itemsets (for
// tests that check the miner rediscovers planted structure).
func (g *Generator) Patterns() []itemset.Itemset {
	out := make([]itemset.Itemset, len(g.patterns))
	for i := range g.patterns {
		out[i] = g.patterns[i].items.Clone()
	}
	return out
}
