package gen

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/itemset"
)

func TestName(t *testing.T) {
	cases := []struct {
		p    Params
		want string
	}{
		{Params{T: 10, I: 4, D: 100000}, "T10.I4.D100K"},
		{Params{T: 5, I: 2, D: 100000}, "T5.I2.D100K"},
		{Params{T: 10, I: 6, D: 3200000}, "T10.I6.D3200K"},
		{Params{T: 10, I: 6, D: 1000000}, "T10.I6.D1M"},
		{Params{T: 10, I: 6, D: 123}, "T10.I6.D123"},
	}
	for _, c := range cases {
		if got := c.p.Name(); got != c.want {
			t.Errorf("Name(%+v) = %q, want %q", c.p, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{N: 10, L: 5, I: 0, T: 5, D: 10},
		{N: 10, L: 5, I: 20, T: 5, D: 10}, // I > N
		{N: 10, L: 5, I: 2, T: 0, D: 10},
		{N: 10, L: 5, I: 2, T: 5, D: -1},
	}
	for _, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("New(%+v) should fail", p)
		}
	}
	if _, err := New(Params{N: 100, L: 20, I: 4, T: 10, D: 100}); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestGenerateShape(t *testing.T) {
	p := Params{N: 500, L: 100, I: 4, T: 10, D: 2000, Seed: 1}
	d, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != p.D {
		t.Fatalf("generated %d transactions, want %d", d.Len(), p.D)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mean transaction length should be within 25% of T.
	avg := d.AvgLen()
	if math.Abs(avg-float64(p.T)) > 0.25*float64(p.T) {
		t.Errorf("avg transaction length %.2f too far from T=%d", avg, p.T)
	}
	// All items within universe.
	for i := 0; i < d.Len(); i++ {
		for _, it := range d.Items(i) {
			if int(it) >= p.N || it < 0 {
				t.Fatalf("item %d out of universe", it)
			}
		}
	}
}

func TestGenerateDeterministicBySeed(t *testing.T) {
	p := Params{N: 200, L: 50, I: 3, T: 8, D: 300, Seed: 42}
	a, _ := Generate(p)
	b, _ := Generate(p)
	if a.Len() != b.Len() {
		t.Fatal("different lengths for same seed")
	}
	for i := 0; i < a.Len(); i++ {
		if !a.Items(i).Equal(b.Items(i)) {
			t.Fatalf("transaction %d differs for same seed", i)
		}
	}
	p2 := p
	p2.Seed = 43
	c, _ := Generate(p2)
	same := true
	for i := 0; i < a.Len() && i < c.Len(); i++ {
		if !a.Items(i).Equal(c.Items(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical databases")
	}
}

func TestPatternsShape(t *testing.T) {
	g, err := New(Params{N: 300, L: 80, I: 5, T: 10, D: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pats := g.Patterns()
	if len(pats) != 80 {
		t.Fatalf("got %d patterns", len(pats))
	}
	var sum float64
	for _, pt := range pats {
		if len(pt) < 1 {
			t.Error("empty pattern")
		}
		if !pt.IsSorted() {
			t.Error("pattern not sorted")
		}
		sum += float64(len(pt))
	}
	mean := sum / float64(len(pats))
	if math.Abs(mean-5) > 2 {
		t.Errorf("mean pattern size %.2f too far from I=5", mean)
	}
}

// Planted patterns should surface: items that appear in high-weight patterns
// must be far more frequent than uniform. We check that the item frequency
// distribution is clearly skewed (max count ≫ mean count).
func TestGeneratedDataIsSkewed(t *testing.T) {
	p := Params{N: 400, L: 60, I: 4, T: 10, D: 3000, Seed: 9}
	d, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, p.N)
	for i := 0; i < d.Len(); i++ {
		for _, it := range d.Items(i) {
			counts[it]++
		}
	}
	var max, total int
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	mean := float64(total) / float64(p.N)
	if float64(max) < 3*mean {
		t.Errorf("item distribution not skewed: max %d vs mean %.1f", max, mean)
	}
}

// Co-occurrence: pairs inside one planted pattern should co-occur more often
// than random pairs — the property Apriori mining depends on.
func TestPlantedCooccurrence(t *testing.T) {
	p := Params{N: 300, L: 30, I: 4, T: 12, D: 2000, Seed: 21}
	g, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	d := g.Generate()
	// Count co-occurrences of the first two items of each planted pattern
	// with ≥2 items.
	var plantedPairs [][2]itemset.Item
	for _, pt := range g.Patterns() {
		if len(pt) >= 2 {
			plantedPairs = append(plantedPairs, [2]itemset.Item{pt[0], pt[1]})
		}
		if len(plantedPairs) == 10 {
			break
		}
	}
	cooc := func(a, b itemset.Item) int {
		n := 0
		for i := 0; i < d.Len(); i++ {
			items := d.Items(i)
			if items.ContainsItem(a) && items.ContainsItem(b) {
				n++
			}
		}
		return n
	}
	plantedTotal := 0
	for _, pr := range plantedPairs {
		plantedTotal += cooc(pr[0], pr[1])
	}
	randomTotal := 0
	for i := 0; i < len(plantedPairs); i++ {
		// Deliberately mismatched pairs across different patterns.
		a := plantedPairs[i][0]
		b := plantedPairs[(i+3)%len(plantedPairs)][1]
		if a == b {
			continue
		}
		randomTotal += cooc(a, b)
	}
	if plantedTotal <= randomTotal {
		t.Errorf("planted pairs co-occur %d times, mismatched pairs %d — no planted structure detected",
			plantedTotal, randomTotal)
	}
}

func TestPoissonMean(t *testing.T) {
	g, _ := New(Params{N: 10, L: 1, I: 1, T: 1, D: 0, Seed: 7})
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(poisson(g.rng, 10))
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.3 {
		t.Errorf("poisson(10) sample mean %.3f", mean)
	}
}

func TestZeroTransactions(t *testing.T) {
	d, err := Generate(Params{N: 50, L: 10, I: 3, T: 5, D: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Errorf("D=0 generated %d transactions", d.Len())
	}
}

func TestTransactionsNonEmpty(t *testing.T) {
	d, err := Generate(Params{N: 100, L: 20, I: 2, T: 1, D: 500, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Len(); i++ {
		if d.Items(i).K() == 0 {
			t.Fatalf("transaction %d is empty", i)
		}
	}
}

func TestSkewKnobPlantsHeavyTail(t *testing.T) {
	base := Params{N: 200, L: 50, I: 4, T: 8, D: 1000, Seed: 11}
	plain, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	skewed := base
	skewed.SkewFrac = 0.2
	skewed.SkewMult = 6
	heavy, err := Generate(skewed)
	if err != nil {
		t.Fatal(err)
	}
	// The head (first 80%) is generated from the same rng stream with the
	// same means; the tail must be far longer on average.
	headCut := 800
	avg := func(d interface {
		Len() int
		Items(int) itemset.Itemset
	}, lo, hi int) float64 {
		var sum int
		for i := lo; i < hi; i++ {
			sum += len(d.Items(i))
		}
		return float64(sum) / float64(hi-lo)
	}
	headLen := avg(heavy, 0, headCut)
	tailLen := avg(heavy, headCut, heavy.Len())
	if tailLen < 3*headLen {
		t.Errorf("tail not heavy: head avg %.1f, tail avg %.1f", headLen, tailLen)
	}
	// Knob off ⇒ byte-identical stream to the pre-knob generator.
	if plain.Len() != 1000 {
		t.Fatalf("plain Len = %d", plain.Len())
	}
	again, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < plain.Len(); i++ {
		if !plain.Items(i).Equal(again.Items(i)) {
			t.Fatalf("transaction %d differs across identical-seed runs", i)
		}
	}
}

func TestSkewFracValidate(t *testing.T) {
	p := Params{N: 100, L: 20, I: 4, T: 10, D: 100, SkewFrac: 1.5}
	if _, err := New(p); err == nil {
		t.Error("SkewFrac > 1 should fail validation")
	}
	p.SkewFrac = -0.1
	if _, err := New(p); err == nil {
		t.Error("negative SkewFrac should fail validation")
	}
}

func TestGenerateToMatchesGenerate(t *testing.T) {
	p := Params{N: 60, L: 15, I: 4, T: 8, D: 500, Seed: 99}
	g1, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	d := g1.Generate()

	g2, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	var i int
	err = g2.GenerateTo(func(tid int64, items itemset.Itemset) error {
		if tid != d.TID(i) {
			t.Fatalf("transaction %d: streamed tid %d, materialized %d", i, tid, d.TID(i))
		}
		if !items.Equal(d.Items(i)) {
			t.Fatalf("transaction %d: streamed %v, materialized %v", i, items, d.Items(i))
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != d.Len() {
		t.Fatalf("streamed %d transactions, materialized %d", i, d.Len())
	}
}

func TestGenerateToEmitError(t *testing.T) {
	g, err := New(Params{N: 30, L: 8, I: 3, T: 6, D: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	err = g.GenerateTo(func(tid int64, _ itemset.Itemset) error {
		calls++
		if tid == 3 {
			return errTestStop
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "transaction 3") {
		t.Fatalf("GenerateTo = %v, want wrapped emit error", err)
	}
	if calls != 3 {
		t.Fatalf("emit called %d times, want 3 (abort on error)", calls)
	}
}

var errTestStop = errors.New("stop")
