package armine

import (
	"path/filepath"
	"testing"
)

// TestPublicAPIEndToEnd walks the full public surface the way a downstream
// user would: generate → persist → reload → mine (3 ways) → rules → study.
func TestPublicAPIEndToEnd(t *testing.T) {
	d, err := Generate(GenParams{T: 8, I: 3, D: 800, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "data.ardb")
	if err := d.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadDatabase(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != d.Len() {
		t.Fatalf("reload: %d vs %d", loaded.Len(), d.Len())
	}

	seq, err := MineSequential(loaded, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	par, stats, err := MineParallel(loaded, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if seq.NumFrequent() != par.NumFrequent() {
		t.Fatalf("seq %d vs par %d", seq.NumFrequent(), par.NumFrequent())
	}
	if stats.Total <= 0 {
		t.Error("no parallel timing")
	}
	pccd, _, err := MinePCCD(loaded, ParallelOptions{
		Options: MiningOptions{MinSupport: 0.01}, Procs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pccd.NumFrequent() != seq.NumFrequent() {
		t.Fatalf("pccd %d vs seq %d", pccd.NumFrequent(), seq.NumFrequent())
	}

	rules := GenerateRules(seq, RuleOptions{MinConfidence: 0.6, DBSize: int64(loaded.Len())})
	for _, r := range rules {
		if r.Confidence < 0.6-1e-9 {
			t.Errorf("rule below threshold: %v", r)
		}
	}

	study, err := RunPlacementStudy(loaded, StudyOptions{
		Mining:     MiningOptions{MinSupport: 0.01, Hash: HashBitonic, ShortCircuit: true},
		Procs:      2,
		Policies:   []Policy{PolicyCCPD, PolicySPP, PolicyLCAGPP},
		MaxTraceTx: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if study.ByPolicy(PolicySPP) == nil {
		t.Fatal("study missing SPP row")
	}
	if n := study.ByPolicy(PolicySPP).Normalized; n <= 0 || n >= 1.1 {
		t.Errorf("SPP normalized time out of range: %f", n)
	}
}

// TestExtensionAPIs drives the Section 7/8 re-exports end to end.
func TestExtensionAPIs(t *testing.T) {
	// Sequences.
	seqs, _, err := GenerateSequences(SequenceGenParams{C: 200, SeqLen: 8, NP: 5, PatLen: 3, N: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := MineSequences(seqs, SequenceOptions{MinSupport: 0.05, Procs: 2, Hash: SeqHashBitonic})
	if err != nil {
		t.Fatal(err)
	}
	if sres.NumPatterns() == 0 {
		t.Error("no sequential patterns")
	}

	// Taxonomy.
	tax, err := GenerateTaxonomy(TaxonomyGenParams{NumLeaves: 40, Fanout: 4, Levels: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Generate(GenParams{N: 40, L: 10, T: 5, I: 2, D: 400, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tres, err := MineGeneralized(d, tax, TaxonomyOptions{Mining: MiningOptions{MinSupport: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	if tres.NumFrequent() == 0 {
		t.Error("no generalized itemsets")
	}

	// Quantitative.
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = float64(i % 50)
	}
	qres, err := MineQuantitative(&QuantTable{Cols: []QuantColumn{
		{Name: "x", Kind: Numeric, Values: vals},
	}}, QuantOptions{Intervals: 4, Mining: MiningOptions{MinSupport: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(qres.Frequent(1)) == 0 {
		t.Error("no quantitative itemsets")
	}

	// Eclat agrees with Apriori.
	aRes, err := Mine(d, MiningOptions{MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	eRes, err := MineEclat(d, EclatOptions{MinSupport: 0.05, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if aRes.NumFrequent() != eRes.NumFrequent() {
		t.Errorf("eclat %d vs apriori %d", eRes.NumFrequent(), aRes.NumFrequent())
	}

	// Maximal extraction + fast rules.
	if len(aRes.Maximal()) == 0 && aRes.NumFrequent() > 0 {
		t.Error("no maximal itemsets")
	}
	slow := GenerateRules(aRes, RuleOptions{MinConfidence: 0.5})
	fast := GenerateRulesFast(aRes, RuleOptions{MinConfidence: 0.5})
	if len(slow) != len(fast) {
		t.Errorf("rule counts differ: %d vs %d", len(slow), len(fast))
	}

	// Sampling evaluation.
	acc, _, err := EvaluateSampling(d, SamplingOptions{
		Fraction: 0.5, Mining: MiningOptions{MinSupport: 0.05}, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Recall() < 0.5 {
		t.Errorf("sampling recall %.2f implausibly low", acc.Recall())
	}
}

func TestPublicConstants(t *testing.T) {
	// AllPolicies is the Fig. 13 x-axis: 7 policies (LPP itself appears
	// only in the single-processor Fig. 12 comparison).
	if len(AllPolicies) != 7 {
		t.Errorf("AllPolicies = %d", len(AllPolicies))
	}
	if PolicyLCAGPP.String() != "LCA-GPP" {
		t.Error("policy re-export broken")
	}
	s := NewItemset(3, 1, 2)
	if !s.Equal(NewItemset(1, 2, 3)) {
		t.Error("NewItemset re-export broken")
	}
	cfg := DefaultCacheConfig(4)
	if cfg.Procs != 4 || cfg.LineSize == 0 {
		t.Errorf("cache config: %+v", cfg)
	}
}
