// Package armine is a Go reproduction of "Parallel Data Mining for
// Association Rules on Shared-Memory Multi-Processors" (Zaki, Ogihara,
// Parthasarathy, Li — SC'96; extended in KAIS 2001). It provides:
//
//   - sequential Apriori association mining with the paper's optimizations
//     (equivalence-class join, bitonic hash-tree balancing, short-circuited
//     subset checking);
//   - the CCPD and PCCD shared-memory parallel algorithms with computation
//     balancing and selectable counter-update modes;
//   - association rule generation;
//   - an IBM Quest-style synthetic basket data generator;
//   - the Section 5 memory placement policies (CCPD/SPP/LPP/GPP/L-*/LCA-GPP)
//     evaluated through a per-processor MESI cache simulator.
//
// The types here are thin re-exports of the internal packages so downstream
// users need a single import:
//
//	import "repro"
//
//	db, _ := armine.Generate(armine.GenParams{T: 10, I: 4, D: 100000, Seed: 1})
//	res, _ := armine.MineSequential(db, 0.005)
//	rules := armine.GenerateRules(res, armine.RuleOptions{MinConfidence: 0.9})
package armine

import (
	"context"

	"repro/internal/apriori"
	"repro/internal/cachesim"
	"repro/internal/ccpd"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/db/seg"
	"repro/internal/eclat"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/mem"
	"repro/internal/quant"
	"repro/internal/robust"
	"repro/internal/rules"
	"repro/internal/sampling"
	"repro/internal/seqpat"
	"repro/internal/taxonomy"
	"repro/internal/vbit"
)

// Item is a single attribute (re-export of itemset.Item).
type Item = itemset.Item

// Itemset is a sorted set of items.
type Itemset = itemset.Itemset

// NewItemset builds a sorted, deduplicated itemset.
func NewItemset(items ...Item) Itemset { return itemset.New(items...) }

// Database is an in-memory transaction database.
type Database = db.Database

// NewDatabase returns an empty database over [0, numItems) items.
func NewDatabase(numItems int) *Database { return db.New(numItems) }

// ReadDatabase loads a database from the binary file format.
func ReadDatabase(path string) (*Database, error) { return db.ReadFile(path) }

// GenParams configures the synthetic data generator (Quest model).
type GenParams = gen.Params

// Generate produces a synthetic basket database.
func Generate(p GenParams) (*Database, error) { return gen.Generate(p) }

// MiningOptions configures a sequential mining run.
type MiningOptions = apriori.Options

// FrequentItemset pairs an itemset with its support.
type FrequentItemset = apriori.FrequentItemset

// Result holds the frequent itemsets by size plus per-iteration stats.
type Result = apriori.Result

// Mine runs sequential Apriori with explicit options.
func Mine(d *Database, opts MiningOptions) (*Result, error) { return apriori.Mine(d, opts) }

// MineSequential mines with the paper's optimizations enabled.
func MineSequential(d *Database, minSupport float64) (*Result, error) {
	return core.MineSequential(d, minSupport)
}

// ParallelOptions configures a CCPD/PCCD run.
type ParallelOptions = ccpd.Options

// ParallelStats carries per-phase wall-clock timings.
type ParallelStats = ccpd.Stats

// MineCCPD runs the Common Candidate Partitioned Database algorithm.
func MineCCPD(d *Database, opts ParallelOptions) (*Result, *ParallelStats, error) {
	return ccpd.Mine(d, opts)
}

// MinePCCD runs the Partitioned Candidate Common Database algorithm.
func MinePCCD(d *Database, opts ParallelOptions) (*Result, *ParallelStats, error) {
	return ccpd.MinePCCD(d, opts)
}

// MineParallel runs CCPD with every optimization enabled.
func MineParallel(d *Database, minSupport float64, procs int) (*Result, *ParallelStats, error) {
	return core.MineParallel(d, minSupport, procs)
}

// MineCCPDCtx is MineCCPD with cooperative cancellation: on ctx
// cancellation the completed iterations are returned together with a
// *robust.CanceledError naming the interrupted phase.
func MineCCPDCtx(ctx context.Context, d *Database, opts ParallelOptions) (*Result, *ParallelStats, error) {
	return ccpd.MineCtx(ctx, d, opts)
}

// MinePCCDCtx is MinePCCD with cooperative cancellation.
func MinePCCDCtx(ctx context.Context, d *Database, opts ParallelOptions) (*Result, *ParallelStats, error) {
	return ccpd.MinePCCDCtx(ctx, d, opts)
}

// ResumeCCPD continues a checkpointed CCPD run (ParallelOptions.Checkpoint)
// bit-identically from its last completed iteration. The options must match
// the checkpointed run except MaxK, which may grow.
func ResumeCCPD(ctx context.Context, checkpointPath string, d *Database, opts ParallelOptions) (*Result, *ParallelStats, error) {
	return ccpd.Resume(ctx, checkpointPath, d, opts)
}

// WorkerPanicError reports a panic contained in a pool worker: the mining
// call returns it instead of crashing the process.
type WorkerPanicError = robust.WorkerPanicError

// CanceledError reports cooperative cancellation, naming the mining phase
// and iteration that observed it.
type CanceledError = robust.CanceledError

// Rule is an association rule.
type Rule = rules.Rule

// RuleOptions filters generated rules.
type RuleOptions = rules.Options

// GenerateRules derives rules from the frequent itemsets.
func GenerateRules(res *Result, opts RuleOptions) []Rule { return rules.Generate(res, opts) }

// Placement policies (Section 5).
type Policy = mem.Policy

// Policy re-exports.
const (
	PolicyCCPD   = mem.PolicyCCPD
	PolicySPP    = mem.PolicySPP
	PolicyLPP    = mem.PolicyLPP
	PolicyGPP    = mem.PolicyGPP
	PolicyLSPP   = mem.PolicyLSPP
	PolicyLLPP   = mem.PolicyLLPP
	PolicyLGPP   = mem.PolicyLGPP
	PolicyLCAGPP = mem.PolicyLCAGPP
)

// AllPolicies lists every placement policy in paper order.
var AllPolicies = mem.AllPolicies

// StudyOptions configures a placement study.
type StudyOptions = core.StudyOptions

// StudyResult is the outcome of a placement study.
type StudyResult = core.StudyResult

// PolicyResult is one policy's simulated behaviour.
type PolicyResult = core.PolicyResult

// CacheConfig sizes the simulated memory system.
type CacheConfig = cachesim.Config

// DefaultCacheConfig approximates the paper's evaluation platform.
func DefaultCacheConfig(procs int) CacheConfig { return cachesim.DefaultConfig(procs) }

// RunPlacementStudy evaluates placement policies through the cache
// simulator (Figs. 12–13).
func RunPlacementStudy(d *Database, opts StudyOptions) (*StudyResult, error) {
	return core.RunPlacementStudy(d, opts)
}

// Hash tree knobs for MiningOptions.
const (
	HashInterleaved = hashtree.HashInterleaved
	HashBitonic     = hashtree.HashBitonic
)

// Counter modes for ParallelOptions.
const (
	CounterLocked  = hashtree.CounterLocked
	CounterAtomic  = hashtree.CounterAtomic
	CounterPrivate = hashtree.CounterPrivate
)

// Balance schemes for ParallelOptions.
const (
	BalanceBlock       = ccpd.BalanceBlock
	BalanceInterleaved = ccpd.BalanceInterleaved
	BalanceBitonic     = ccpd.BalanceBitonic
)

// Counting-phase database partition modes for ParallelOptions: the static
// splits of Section 3.2.2 plus the dynamic chunk-claiming schedulers.
const (
	PartitionBlock    = ccpd.PartitionBlock
	PartitionWorkload = ccpd.PartitionWorkload
	PartitionDynamic  = ccpd.PartitionDynamic
	PartitionStealing = ccpd.PartitionStealing
)

// --- Section 8 extension tasks: sequential patterns, multi-level
// (taxonomy) associations and quantitative associations, built on the same
// hash-tree / balancing / parallelization machinery. ---

// Sequence is an ordered event list for sequential-pattern mining.
type Sequence = seqpat.Sequence

// SequenceDataset is a set of customer event sequences.
type SequenceDataset = seqpat.Dataset

// SequenceOptions configures sequential-pattern mining.
type SequenceOptions = seqpat.Options

// SequenceResult holds frequent sequential patterns by length.
type SequenceResult = seqpat.Result

// MineSequences finds frequent sequential patterns (subsequences with gaps
// allowed; support counts customers).
func MineSequences(d *SequenceDataset, opts SequenceOptions) (*SequenceResult, error) {
	return seqpat.Mine(d, opts)
}

// SequenceGenParams configures the synthetic sequence generator.
type SequenceGenParams = seqpat.GenParams

// GenerateSequences synthesizes customer sequences with planted patterns.
func GenerateSequences(p SequenceGenParams) (*SequenceDataset, []Sequence, error) {
	return seqpat.Generate(p)
}

// Sequence trie hash choices.
const (
	SeqHashInterleaved = seqpat.HashInterleaved
	SeqHashBitonic     = seqpat.HashBitonic
)

// Taxonomy is an is-a forest over items for multi-level association mining.
type Taxonomy = taxonomy.Taxonomy

// NewTaxonomy builds a taxonomy from a parent vector (-1 = root).
func NewTaxonomy(parent []Item) (*Taxonomy, error) { return taxonomy.New(parent) }

// TaxonomyGenParams configures the random taxonomy generator.
type TaxonomyGenParams = taxonomy.GenParams

// GenerateTaxonomy builds a random is-a forest.
func GenerateTaxonomy(p TaxonomyGenParams) (*Taxonomy, error) { return taxonomy.Generate(p) }

// TaxonomyOptions configures generalized mining.
type TaxonomyOptions = taxonomy.Options

// TaxonomyResult holds generalized frequent itemsets.
type TaxonomyResult = taxonomy.Result

// MineGeneralized mines multi-level association itemsets over a taxonomy.
func MineGeneralized(d *Database, t *Taxonomy, opts TaxonomyOptions) (*TaxonomyResult, error) {
	return taxonomy.Mine(d, t, opts)
}

// QuantTable is a relational table for quantitative association mining.
type QuantTable = quant.Table

// QuantColumn is one attribute of a QuantTable.
type QuantColumn = quant.Column

// QuantOptions configures discretization and mining.
type QuantOptions = quant.Options

// QuantResult holds decoded quantitative itemsets.
type QuantResult = quant.Result

// Attribute kinds for QuantColumn.
const (
	Numeric     = quant.Numeric
	Categorical = quant.Categorical
)

// MineQuantitative discretizes and mines a relational table.
func MineQuantitative(t *QuantTable, opts QuantOptions) (*QuantResult, error) {
	return quant.Mine(t, opts)
}

// --- Related algorithms from the paper's Section 7 discussion. ---

// EclatOptions configures vertical (tid-list intersection) mining.
type EclatOptions = eclat.Options

// MineEclat mines with the authors' follow-up vertical algorithm; results
// are identical to Apriori with a different cost structure (pure
// intersections, no hash tree, no rescans).
func MineEclat(d *Database, opts EclatOptions) (*Result, error) { return eclat.Mine(d, opts) }

// MineEclatCtx is MineEclat with cooperative cancellation, observed at
// equivalence-class granularity; completed classes are returned as a
// partial result together with a *CanceledError.
func MineEclatCtx(ctx context.Context, d *Database, opts EclatOptions) (*Result, error) {
	return eclat.MineCtx(ctx, d, opts)
}

// VBitOptions configures the word-parallel vertical bitmap engine.
type VBitOptions = vbit.Options

// VBitStats carries the vertical engine's deterministic work model and
// wall-clock timings.
type VBitStats = vbit.Stats

// MineVBit runs the word-parallel dEclat engine: per-item TID bitmaps with
// tidlist fallback for sparse items, popcount support kernels, diffsets
// below the first level, and per-equivalence-class tasks on the shared
// worker pool. Results are identical to Apriori in ordering and supports.
func MineVBit(d *Database, opts VBitOptions) (*Result, *VBitStats, error) {
	return vbit.Mine(d, opts)
}

// MineVBitCtx is MineVBit with cooperative cancellation (per class claim);
// completed classes are merged into the partial result returned alongside
// the *CanceledError.
func MineVBitCtx(ctx context.Context, d *Database, opts VBitOptions) (*Result, *VBitStats, error) {
	return vbit.MineCtx(ctx, d, opts)
}

// Engine identifies a counting engine for the auto-selector.
type Engine = vbit.Engine

// Engines the auto-selector chooses between.
const (
	EngineCCPD = vbit.EngineCCPD
	EngineVBit = vbit.EngineVBit
)

// DBStats are the database statistics the engine selector decides on.
type DBStats = vbit.DBStats

// CharacterizeDB computes selector statistics for a database in O(1).
func CharacterizeDB(d *Database) DBStats { return vbit.Characterize(d) }

// SelectEngine picks the hash-tree (CCPD) or vertical bitmap (vbit) engine
// from database statistics — the -algo auto policy.
func SelectEngine(s DBStats) Engine { return vbit.AutoSelect(s) }

// --- Unified engine interface and the cost-based planner. ---

// Miner is the unified engine interface: every mining engine — sequential
// Apriori, CCPD, PCCD, eclat, the vertical bitmap engine and the sampling
// evaluation — dispatches through it with one engine-independent Spec.
type Miner = engine.Miner

// SegmentedMiner is a Miner with an out-of-core path over segmented stores.
type SegmentedMiner = engine.SegmentedMiner

// Resumer is a Miner that can continue a checkpointed run.
type Resumer = engine.Resumer

// EngineCaps are a Miner's capability flags (parallel, cancellation,
// checkpoint/resume, segmented, exact).
type EngineCaps = engine.Caps

// EngineSpec is the engine-independent mining request a Miner lowers onto
// its own options.
type EngineSpec = engine.Spec

// EngineStats are the normalized statistics every Miner returns, with the
// raw per-engine detail attached.
type EngineStats = engine.Stats

// LookupEngine returns the registered Miner with the given name.
func LookupEngine(name string) (Miner, bool) { return engine.Lookup(name) }

// EngineNames lists the registered engines in sorted order.
func EngineNames() []string { return engine.Names() }

// DispatchEngine routes one mining request to a registered engine by name,
// choosing the in-RAM or the segmented path from the data source.
func DispatchEngine(ctx context.Context, name string, d *Database, r *SegReader, s EngineSpec) (*Result, *EngineStats, error) {
	return engine.Dispatch(ctx, name, d, r, s)
}

// Planner is the cost-based planner behind -algo auto: it picks engine,
// counting partition and chunk size from database statistics and the memory
// budget, recording every estimate it decided on.
type Planner = engine.Planner

// PlannerPlan is a planner decision with its recorded estimates.
type PlannerPlan = engine.Plan

// PlannerEstimate is one engine's modelled cost within a plan.
type PlannerEstimate = engine.Estimate

// PlannerDBInfo are the database statistics the planner decides on.
type PlannerDBInfo = engine.DBInfo

// CharacterizePlanner computes planner statistics for an in-memory database.
func CharacterizePlanner(d *Database) PlannerDBInfo { return engine.Characterize(d) }

// CharacterizePlannerReader computes planner statistics for a segmented
// store from its header aggregates (exact) and first/last-segment samples
// (skew).
func CharacterizePlannerReader(r *SegReader) (PlannerDBInfo, error) {
	return engine.CharacterizeReader(r)
}

// --- Out-of-core mining: segmented columnar stores larger than RAM. ---

// SegReader reads a segmented on-disk store (.arseg): int64 global
// addressing over per-segment arenas, each segment materializing as a
// regular Database.
type SegReader = seg.Reader

// SegWriter streams transactions into a segmented store with bounded memory.
type SegWriter = seg.Writer

// SegWriterOptions sizes the segments of a store being written.
type SegWriterOptions = seg.WriterOptions

// PipelineStats is the prefetch pipeline's accounting (loads, stalls,
// overlap) for an out-of-core run.
type PipelineStats = seg.PipelineStats

// OpenSegmented opens a segmented store with read-at segment loading.
func OpenSegmented(path string) (*SegReader, error) { return seg.Open(path) }

// OpenSegmentedMapped opens a segmented store through a memory mapping
// (zero-copy segment materialization) where the platform supports it.
func OpenSegmentedMapped(path string) (*SegReader, error) { return seg.OpenMapped(path) }

// CreateSegmented starts writing a segmented store; Append transactions in
// tid order and Close to publish atomically.
func CreateSegmented(path string, opts SegWriterOptions) (*SegWriter, error) {
	return seg.Create(path, opts)
}

// WriteSegmented writes an in-memory database into a segmented store.
func WriteSegmented(path string, d *Database, opts SegWriterOptions) error {
	return seg.WriteDatabase(path, d, opts)
}

// IsSegmented sniffs whether path holds a segmented store (versus the
// whole-database .ardb format).
func IsSegmented(path string) (bool, error) { return seg.IsSegmented(path) }

// SegmentedOptions configures an out-of-core CCPD run: mining options plus
// the resident-segment byte budget (0 = double-buffered prefetch).
type SegmentedOptions = ccpd.SegmentedOptions

// MineCCPDSegmented mines a segmented store without materializing the whole
// database: segments stream through a double-buffered prefetch pipeline
// while the hash-tree kernels count them. Frequent sets and the
// deterministic work model are bit-identical to the in-RAM run.
func MineCCPDSegmented(r *SegReader, opts SegmentedOptions) (*Result, *ParallelStats, error) {
	return ccpd.MineSegmented(r, opts)
}

// MineCCPDSegmentedCtx is MineCCPDSegmented with cooperative cancellation.
func MineCCPDSegmentedCtx(ctx context.Context, r *SegReader, opts SegmentedOptions) (*Result, *ParallelStats, error) {
	return ccpd.MineSegmentedCtx(ctx, r, opts)
}

// VBitSegmentedOptions configures an out-of-core vertical run.
type VBitSegmentedOptions = vbit.SegmentedOptions

// VBitSegmentedStats summarizes an out-of-core vertical run (per-level
// figures plus pipeline accounting).
type VBitSegmentedStats = vbit.SegmentedStats

// MineVBitSegmented mines a segmented store with the vertical engine,
// level-wise: per level each segment materializes as a small vertical
// layout and candidate supports accumulate across segments through the
// word-parallel popcount kernels.
func MineVBitSegmented(r *SegReader, opts VBitSegmentedOptions) (*Result, *VBitSegmentedStats, error) {
	return vbit.MineSegmented(r, opts)
}

// MineVBitSegmentedCtx is MineVBitSegmented with cooperative cancellation.
func MineVBitSegmentedCtx(ctx context.Context, r *SegReader, opts VBitSegmentedOptions) (*Result, *VBitSegmentedStats, error) {
	return vbit.MineSegmentedCtx(ctx, r, opts)
}

// SamplingOptions configures a sample-vs-full mining evaluation.
type SamplingOptions = sampling.Options

// SamplingAccuracy reports precision/recall of sample mining.
type SamplingAccuracy = sampling.Accuracy

// EvaluateSampling mines a random sample and measures agreement with the
// full database (the companion sampling study).
func EvaluateSampling(d *Database, opts SamplingOptions) (SamplingAccuracy, *Result, error) {
	return sampling.Evaluate(d, opts)
}

// GenerateRulesFast derives the same rules as GenerateRules via the
// ap-genrules consequent-growth algorithm (faster on itemsets with many
// subsets).
func GenerateRulesFast(res *Result, opts RuleOptions) []Rule {
	return rules.GenerateFast(res, opts)
}
