// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section 6) on scaled-down synthetic databases.
//
// Usage:
//
//	experiments -all                   # every table and figure
//	experiments -figure 8              # one figure
//	experiments -table 2 -scale 0.1    # bigger databases
//	experiments -trace skew.json       # Perfetto trace of a skewed stealing run
//	experiments -sweep density         # ccpd-vs-vbit engine crossover study
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/expt"
)

// usageError marks a command-line validation failure; main exits with
// status 2 for these (the conventional usage-error code), versus 1 for
// runtime failures.
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

func main() {
	scale := flag.Float64("scale", 0.02, "database scale factor (1.0 = paper sizes)")
	figure := flag.Int("figure", 0, "regenerate one figure (4, 6, 7, 8, 9, 10, 11, 12, 13)")
	table := flag.Int("table", 0, "regenerate one table (1, 2)")
	all := flag.Bool("all", false, "regenerate everything")
	sched := flag.Bool("sched", false, "run the static-vs-dynamic scheduler balance study")
	sweep := flag.String("sweep", "", "run a parameter sweep: density (ccpd-vs-vbit engine crossover)")
	outofcore := flag.Bool("outofcore", false, "run the out-of-core segmented-mining study (in-RAM vs sync vs double-buffered)")
	maxTrace := flag.Int("maxtrace", 200, "transactions traced per processor in placement studies")
	trace := flag.String("trace", "", "mine the skewed stealing workload and write a Chrome trace JSON here")
	metrics := flag.String("metrics", "", "with -trace: also write a Prometheus-text metrics snapshot here")
	procs := flag.Int("procs", 4, "processors for the -trace run")
	flag.Parse()

	if !*all && *figure == 0 && *table == 0 && !*sched && !*outofcore && *sweep == "" && *trace == "" && *metrics == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *scale, *figure, *table, *all, *sched, *outofcore, *maxTrace, *trace, *metrics, *procs, *sweep); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		var ue *usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(w io.Writer, scale float64, figure, table int, all, sched, outofcore bool, maxTrace int, trace, metrics string, procs int, sweep string) error {
	switch {
	case scale <= 0 || scale > 1:
		return &usageError{msg: fmt.Sprintf("-scale must be a fraction in (0, 1], got %g", scale)}
	case procs <= 0:
		return &usageError{msg: fmt.Sprintf("-procs must be positive, got %d", procs)}
	case maxTrace < 0:
		return &usageError{msg: fmt.Sprintf("-maxtrace must be >= 0, got %d", maxTrace)}
	case sweep != "" && sweep != "density":
		return &usageError{msg: fmt.Sprintf("unknown -sweep %q (want density)", sweep)}
	}
	r := expt.NewRunner(scale)
	r.MaxTraceTx = maxTrace

	if trace != "" || metrics != "" {
		return writeSkewTrace(r, trace, metrics, procs)
	}
	if sweep == "density" {
		return r.DensitySweep(w)
	}

	type step struct {
		name string
		fn   func(io.Writer) error
	}
	steps := map[string]step{
		"t1":  {"Table 1", func(w io.Writer) error { return expt.Table1(w) }},
		"t2":  {"Table 2", r.Table2},
		"f4":  {"Figure 4", func(w io.Writer) error { return expt.Figure4(w) }},
		"f6":  {"Figure 6", r.Figure6},
		"f7":  {"Figure 7", r.Figure7},
		"f8":  {"Figure 8", r.Figure8},
		"f9":  {"Figure 9", r.Figure9},
		"f10": {"Figure 10", r.Figure10},
		"f11": {"Figure 11", r.Figure11},
		"f12": {"Figure 12", r.Figure12},
		"f13": {"Figure 13", r.Figure13},
		"sb":  {"Scheduler balance", r.SchedBalance},
		"ooc": {"Out-of-core mining", r.OutOfCore},
	}
	order := []string{"t1", "t2", "f4", "f6", "f7", "f8", "f9", "f10", "f11", "f12", "f13", "sb", "ooc"}

	var selected []string
	switch {
	case all:
		selected = order
	case sched:
		selected = []string{"sb"}
	case outofcore:
		selected = []string{"ooc"}
	case table != 0:
		key := fmt.Sprintf("t%d", table)
		if _, ok := steps[key]; !ok {
			return fmt.Errorf("unknown table %d", table)
		}
		selected = []string{key}
	case figure != 0:
		key := fmt.Sprintf("f%d", figure)
		if _, ok := steps[key]; !ok {
			return fmt.Errorf("unknown figure %d", figure)
		}
		selected = []string{key}
	}

	for i, key := range selected {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := steps[key].fn(w); err != nil {
			return fmt.Errorf("%s: %w", steps[key].name, err)
		}
	}
	return nil
}

// writeSkewTrace runs the canonical skewed stealing workload and exports its
// timeline and/or metrics snapshot to the given paths.
func writeSkewTrace(r *expt.Runner, tracePath, metricsPath string, procs int) error {
	open := func(path string) (*os.File, error) {
		if path == "" {
			return nil, nil
		}
		return os.Create(path)
	}
	tf, err := open(tracePath)
	if err != nil {
		return err
	}
	mf, err := open(metricsPath)
	if err != nil {
		return err
	}
	var tw, mw io.Writer
	if tf != nil {
		defer tf.Close()
		tw = tf
	}
	if mf != nil {
		defer mf.Close()
		mw = mf
	}
	return r.TraceSkewed(tw, mw, procs)
}
