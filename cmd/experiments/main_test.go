package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleTableAndFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0.002, 0, 1, false, false, false, 20, "", "", 4, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Errorf("missing Table 1:\n%s", buf.String())
	}
	buf.Reset()
	if err := run(&buf, 0.002, 4, 0, false, false, false, 20, "", "", 4, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Errorf("missing Figure 4:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0.002, 99, 0, false, false, false, 20, "", "", 4, ""); err == nil {
		t.Error("unknown figure should fail")
	}
	if err := run(&buf, 0.002, 0, 9, false, false, false, 20, "", "", 4, ""); err == nil {
		t.Error("unknown table should fail")
	}
}

// TestRunValidation pins the flag-range contract: out-of-range -scale,
// -procs and -maxtrace are usage errors (exit 2 from main), and in-range
// boundary values are accepted.
func TestRunValidation(t *testing.T) {
	var buf bytes.Buffer
	cases := []struct {
		name     string
		scale    float64
		maxTrace int
		procs    int
	}{
		{"scale zero", 0, 20, 4},
		{"scale negative", -0.5, 20, 4},
		{"scale above one", 1.5, 20, 4},
		{"procs zero", 0.002, 20, 0},
		{"procs negative", 0.002, 20, -2},
		{"maxtrace negative", 0.002, -1, 4},
	}
	for _, c := range cases {
		err := run(&buf, c.scale, 0, 1, false, false, false, c.maxTrace, "", "", c.procs, "")
		if err == nil {
			t.Errorf("%s: run should fail", c.name)
			continue
		}
		var ue *usageError
		if !errors.As(err, &ue) {
			t.Errorf("%s: error %v is not a usage error (would exit 1, want 2)", c.name, err)
		}
	}
	// Boundary values inside the range pass validation (table 1 is cheap).
	if err := run(&buf, 1, 0, 1, false, false, false, 0, "", "", 1, ""); err != nil {
		t.Errorf("boundary values rejected: %v", err)
	}
}

func TestRunQuickFigures(t *testing.T) {
	// Exercise a fast real figure end-to-end (7 mines all eight datasets at
	// the tiniest scale).
	var buf bytes.Buffer
	if err := run(&buf, 0.002, 7, 0, false, false, false, 10, "", "", 4, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Error("figure 7 output missing")
	}
}

func TestRunSchedBalance(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0.002, 0, 0, false, true, false, 20, "", "", 4, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Scheduler balance") || !strings.Contains(out, "stealing") {
		t.Errorf("scheduler balance output missing:\n%s", out)
	}
}

// TestRunOutOfCore drives the segmented-mining study end to end at the
// tiniest scale: the three modes must agree and the table must carry both
// pipeline modes.
func TestRunOutOfCore(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0.002, 0, 0, false, false, true, 20, "", "", 4, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Out-of-core mining", "ooc sync", "ooc double-buffered", "identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("out-of-core output missing %q:\n%s", want, out)
		}
	}
}

// TestRunDensitySweep drives the ccpd-vs-vbit crossover study end to end at
// the tiniest scale: the table must cover both sides of the planner's
// default crossover density, and an unknown sweep name is a usage error.
func TestRunDensitySweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0.002, 0, 0, false, false, false, 20, "", "", 4, "density"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Density sweep", "planner default crossover", "vbit", "ccpd"} {
		if !strings.Contains(out, want) {
			t.Errorf("density sweep output missing %q:\n%s", want, out)
		}
	}

	if err := run(&buf, 0.002, 0, 0, false, false, false, 20, "", "", 4, "nope"); err == nil {
		t.Error("unknown -sweep should fail")
	} else {
		var ue *usageError
		if !errors.As(err, &ue) {
			t.Errorf("unknown -sweep error %v is not a usage error", err)
		}
	}
}

func TestRunSkewTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "skew.json")
	metricsPath := filepath.Join(dir, "skew.txt")
	var buf bytes.Buffer
	if err := run(&buf, 0.002, 0, 0, false, false, false, 20, tracePath, metricsPath, 4, ""); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("-trace output invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("skew trace has no events")
	}
	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "armine_steals_total") {
		t.Error("metrics snapshot missing steal counters")
	}
}
