// Command armined is the mining-as-a-service daemon: it ingests
// transaction batches over HTTP, re-mines them in the background through
// the engine registry's cost-based planner, and serves association rules
// and Prometheus metrics from an immutable published snapshot.
//
// Server mode:
//
//	armined -addr :8080 -support 0.01 -rules 0.5
//
// Client mode (used by the CI smoke test): stream an .ardb database into a
// running daemon and optionally wait for a snapshot covering it.
//
//	armined -ingest data.ardb -to http://localhost:8080 -wait-published
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/db"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		support  = flag.Float64("support", 0.01, "minimum support fraction for re-mines")
		conf     = flag.Float64("rules", 0.5, "minimum confidence for generated rules")
		maxCons  = flag.Int("max-consequent", 0, "max consequent size (0 = unbounded)")
		procs    = flag.Int("procs", 4, "worker count for parallel engines")
		algo     = flag.String("algo", "auto", "engine name, or auto for the cost-based planner")
		maxK     = flag.Int("maxk", 0, "max itemset size (0 = fixpoint)")
		interval = flag.Duration("remine-interval", 100*time.Millisecond, "debounce between re-mines")
		maxBatch = flag.Int("max-batch", 65536, "max transactions per ingest request")
		maxItems = flag.Int("max-tx-items", 4096, "max items per transaction")
		maxItem  = flag.Int64("max-item", 1<<20, "exclusive item-id upper bound")
		maxBody  = flag.Int64("max-body", 8<<20, "max ingest body bytes")

		ingest    = flag.String("ingest", "", "client mode: .ardb file to stream into a daemon")
		to        = flag.String("to", "http://localhost:8080", "client mode: daemon base URL")
		batchSize = flag.Int("batch", 4096, "client mode: transactions per ingest request")
		waitPub   = flag.Bool("wait-published", false, "client mode: wait until a snapshot covers the ingested data")
		waitFor   = flag.Duration("wait-timeout", 30*time.Second, "client mode: -wait-published timeout")
	)
	flag.Parse()

	if *ingest != "" {
		if err := runClient(*ingest, *to, *batchSize, *waitPub, *waitFor); err != nil {
			log.Fatalf("armined: %v", err)
		}
		return
	}
	if err := runServer(serve.Config{
		Support: *support, MinConfidence: *conf, MaxConsequent: *maxCons,
		Procs: *procs, Engine: *algo, MaxK: *maxK,
		RemineInterval: *interval, MaxBatch: *maxBatch, MaxTxItems: *maxItems,
		MaxItem: *maxItem, MaxBodyBytes: *maxBody,
	}, *addr); err != nil {
		log.Fatalf("armined: %v", err)
	}
}

// runServer runs the daemon until SIGINT/SIGTERM, then shuts down
// gracefully: stop accepting connections, drain in-flight queries, cancel
// the re-mine loop (a mine in flight stops cooperatively via MineCtx), and
// exit 0.
func runServer(cfg serve.Config, addr string) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	srv := serve.New(cfg)
	mineCtx, cancelMine := context.WithCancel(context.Background())
	defer cancelMine()
	go srv.Run(mineCtx)

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("armined: listening on %s (support=%g conf=%g engine=%s procs=%d)",
			addr, cfg.Support, cfg.MinConfidence, cfg.Engine, cfg.Procs)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		cancelMine()
		srv.Wait()
		return err
	case <-ctx.Done():
	}
	log.Printf("armined: shutting down")
	// Drain in-flight HTTP first (queries finish against the still-valid
	// published snapshot), then cancel any mine in flight.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("armined: shutdown: %v", err)
	}
	cancelMine()
	srv.Wait()
	log.Printf("armined: bye")
	return nil
}

// runClient streams an .ardb file into a daemon in batches and optionally
// polls /healthz until a published snapshot covers every ingested
// transaction.
func runClient(path, base string, batchSize int, waitPub bool, timeout time.Duration) error {
	d, err := db.ReadFile(path)
	if err != nil {
		return err
	}
	if batchSize <= 0 {
		batchSize = 4096
	}
	client := &http.Client{Timeout: 30 * time.Second}
	total := int64(0)
	for lo := 0; lo < d.Len(); lo += batchSize {
		hi := lo + batchSize
		if hi > d.Len() {
			hi = d.Len()
		}
		txs := make([][]int64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			items := d.Items(i)
			row := make([]int64, len(items))
			for j, it := range items {
				row[j] = int64(it)
			}
			txs = append(txs, row)
		}
		body, err := json.Marshal(map[string][][]int64{"transactions": txs})
		if err != nil {
			return err
		}
		resp, err := client.Post(base+"/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		var ir struct {
			Accepted int    `json:"accepted"`
			Total    int64  `json:"total"`
			Error    string `json:"error"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&ir)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("ingest batch at %d: HTTP %d (accepted %d): %s", lo, resp.StatusCode, ir.Accepted, ir.Error)
		}
		if decErr != nil {
			return fmt.Errorf("ingest batch at %d: decode response: %v", lo, decErr)
		}
		total += int64(ir.Accepted)
	}
	fmt.Fprintf(os.Stdout, "ingested %d transactions\n", total)
	if !waitPub {
		return nil
	}
	deadline := time.Now().Add(timeout)
	for {
		gen, dbLen, err := health(client, base)
		if err == nil && dbLen >= total {
			fmt.Fprintf(os.Stdout, "published generation %d covering %d transactions\n", gen, dbLen)
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for a snapshot covering %d transactions (last: gen %d, dbLen %d, err %v)", total, gen, dbLen, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func health(client *http.Client, base string) (gen, dbLen int64, err error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var h struct {
		Generation int64 `json:"generation"`
		DBLen      int64 `json:"dbLen"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return 0, 0, err
	}
	return h.Generation, h.DBLen, nil
}
