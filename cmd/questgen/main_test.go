package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/db"
	"repro/internal/gen"
)

func TestRunWritesDatabase(t *testing.T) {
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	dir := t.TempDir()
	out := filepath.Join(dir, "tiny.ardb")
	p := gen.Params{N: 100, L: 20, T: 5, I: 2, D: 300, Seed: 4}
	if err := run(p, out); err != nil {
		t.Fatal(err)
	}
	d, err := db.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 300 {
		t.Errorf("read back %d transactions", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRunDefaultName(t *testing.T) {
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	dir := t.TempDir()
	cwd, _ := os.Getwd()
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)

	p := gen.Params{N: 50, L: 10, T: 4, I: 2, D: 250, Seed: 9}
	if err := run(p, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat("T4.I2.D250.ardb"); err != nil {
		t.Errorf("default-named file missing: %v", err)
	}
}

func TestRunBadParams(t *testing.T) {
	if err := run(gen.Params{N: 10, L: 5, T: 0, I: 2, D: 10}, "x.ardb"); err == nil {
		t.Error("invalid params should fail")
	}
	if err := run(gen.Params{N: 100, L: 20, T: 5, I: 2, D: 10, Seed: 1}, "/nonexistent-dir/x.ardb"); err == nil {
		t.Error("unwritable path should fail")
	}
}
