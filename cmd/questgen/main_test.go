package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/db"
	"repro/internal/db/seg"
	"repro/internal/gen"
)

func TestRunWritesDatabase(t *testing.T) {
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	dir := t.TempDir()
	out := filepath.Join(dir, "tiny.ardb")
	p := gen.Params{N: 100, L: 20, T: 5, I: 2, D: 300, Seed: 4}
	if err := run(p, 0, out); err != nil {
		t.Fatal(err)
	}
	d, err := db.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 300 {
		t.Errorf("read back %d transactions", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRunDefaultName(t *testing.T) {
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	dir := t.TempDir()
	cwd, _ := os.Getwd()
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)

	p := gen.Params{N: 50, L: 10, T: 4, I: 2, D: 250, Seed: 9}
	if err := run(p, 0, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat("T4.I2.D250.ardb"); err != nil {
		t.Errorf("default-named file missing: %v", err)
	}
}

func TestRunBadParams(t *testing.T) {
	if err := run(gen.Params{N: 10, L: 5, T: 0, I: 2, D: 10}, 0, "x.ardb"); err == nil {
		t.Error("invalid params should fail")
	}
	if err := run(gen.Params{N: 100, L: 20, T: 5, I: 2, D: 10, Seed: 1}, 0, "/nonexistent-dir/x.ardb"); err == nil {
		t.Error("unwritable path should fail")
	}
}

// TestRunSegmentedMatchesWhole: -seg streams the same rng draw stream, so
// the segmented store holds exactly the transactions of the whole-database
// run with the same seed.
func TestRunSegmentedMatchesWhole(t *testing.T) {
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	dir := t.TempDir()
	p := gen.Params{N: 80, L: 15, T: 5, I: 2, D: 400, Seed: 11}
	ardb := filepath.Join(dir, "w.ardb")
	arseg := filepath.Join(dir, "w.arseg")
	if err := run(p, 0, ardb); err != nil {
		t.Fatal(err)
	}
	if err := run(p, 150, arseg); err != nil {
		t.Fatal(err)
	}
	want, err := db.ReadFile(ardb)
	if err != nil {
		t.Fatal(err)
	}
	r, err := seg.Open(arseg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumTx() != int64(want.Len()) || r.NumSegments() != 3 {
		t.Fatalf("store has %d tx in %d segments, want %d in 3", r.NumTx(), r.NumSegments(), want.Len())
	}
	var base int
	for i := 0; i < r.NumSegments(); i++ {
		sd, err := r.LoadSegment(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < sd.Len(); j++ {
			if sd.TID(j) != want.TID(base+j) || !sd.Items(j).Equal(want.Items(base+j)) {
				t.Fatalf("segment %d tx %d differs from whole-database generation", i, j)
			}
		}
		base += sd.Len()
	}
}

func TestRunSegmentedAbortsCleanly(t *testing.T) {
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	if err := run(gen.Params{N: 100, L: 20, T: 5, I: 2, D: 10, Seed: 1}, 4, "/nonexistent-dir/x.arseg"); err == nil {
		t.Error("unwritable segmented path should fail")
	}
}
