// Command questgen generates IBM Quest-style synthetic basket databases in
// the repository's binary format (Table 2 of the paper).
//
// Usage:
//
//	questgen -T 10 -I 4 -D 100000 -o T10.I4.D100K.ardb
//	questgen -T 10 -I 6 -D 3200000 -seg 262144 -o T10.I6.D3200K.arseg
//
// With -seg the transactions stream straight into a segmented out-of-core
// store (one segment per that many transactions), so the database never
// materializes in memory — D is bounded by disk, not RAM.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/db/seg"
	"repro/internal/gen"
	"repro/internal/itemset"
)

func main() {
	var p gen.Params
	flag.IntVar(&p.N, "N", 1000, "number of items")
	flag.IntVar(&p.L, "L", 2000, "number of maximal potentially frequent itemsets")
	flag.IntVar(&p.I, "I", 4, "average size of the maximal itemsets")
	flag.IntVar(&p.T, "T", 10, "average transaction size")
	flag.IntVar(&p.D, "D", 100000, "number of transactions")
	flag.Int64Var(&p.Seed, "seed", 1, "random seed")
	segTx := flag.Int("seg", 0, "write a segmented store with this many transactions per segment (0 = whole-database .ardb)")
	out := flag.String("o", "", "output file (default <name>.ardb, or <name>.arseg with -seg)")
	flag.Parse()

	if err := run(p, *segTx, *out); err != nil {
		fmt.Fprintln(os.Stderr, "questgen:", err)
		os.Exit(1)
	}
}

func run(p gen.Params, segTx int, out string) error {
	if segTx > 0 {
		return runSegmented(p, segTx, out)
	}
	if out == "" {
		out = p.Name() + ".ardb"
	}
	d, err := gen.Generate(p)
	if err != nil {
		return err
	}
	if err := d.WriteFile(out); err != nil {
		return err
	}
	fmt.Printf("%s: %d transactions, %d items, avg len %.2f, %.1f MB -> %s\n",
		p.Name(), d.Len(), d.NumItems(), d.AvgLen(), float64(d.SizeBytes())/(1<<20), out)
	return nil
}

// runSegmented streams GenerateTo straight into a seg.Writer: memory stays
// bounded by one segment regardless of D. The rng draw stream is identical
// to the in-memory generator's, so -seg produces the same transactions as a
// whole-database run with the same seed.
func runSegmented(p gen.Params, segTx int, out string) error {
	if out == "" {
		out = p.Name() + ".arseg"
	}
	g, err := gen.New(p)
	if err != nil {
		return err
	}
	w, err := seg.Create(out, seg.WriterOptions{NumItems: p.N, SegTx: segTx})
	if err != nil {
		return err
	}
	err = g.GenerateTo(func(tid int64, items itemset.Itemset) error {
		return w.Append(tid, items)
	})
	if err != nil {
		w.Abort()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	r, err := seg.Open(out)
	if err != nil {
		return fmt.Errorf("verifying written store: %w", err)
	}
	defer r.Close()
	fi, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d transactions, %d items, %d segments, %.1f MB -> %s\n",
		p.Name(), r.NumTx(), r.NumItems(), r.NumSegments(), float64(fi.Size())/(1<<20), out)
	return nil
}
