// Command questgen generates IBM Quest-style synthetic basket databases in
// the repository's binary format (Table 2 of the paper).
//
// Usage:
//
//	questgen -T 10 -I 4 -D 100000 -o T10.I4.D100K.ardb
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
)

func main() {
	var p gen.Params
	flag.IntVar(&p.N, "N", 1000, "number of items")
	flag.IntVar(&p.L, "L", 2000, "number of maximal potentially frequent itemsets")
	flag.IntVar(&p.I, "I", 4, "average size of the maximal itemsets")
	flag.IntVar(&p.T, "T", 10, "average transaction size")
	flag.IntVar(&p.D, "D", 100000, "number of transactions")
	flag.Int64Var(&p.Seed, "seed", 1, "random seed")
	out := flag.String("o", "", "output file (default <name>.ardb)")
	flag.Parse()

	if err := run(p, *out); err != nil {
		fmt.Fprintln(os.Stderr, "questgen:", err)
		os.Exit(1)
	}
}

func run(p gen.Params, out string) error {
	if out == "" {
		out = p.Name() + ".ardb"
	}
	d, err := gen.Generate(p)
	if err != nil {
		return err
	}
	if err := d.WriteFile(out); err != nil {
		return err
	}
	fmt.Printf("%s: %d transactions, %d items, avg len %.2f, %.1f MB -> %s\n",
		p.Name(), d.Len(), d.NumItems(), d.AvgLen(), float64(d.SizeBytes())/(1<<20), out)
	return nil
}
