package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/db/seg"
	"repro/internal/gen"
)

func TestParseGenSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    gen.Params
		wantErr bool
	}{
		{"T10.I4.D100K", gen.Params{T: 10, I: 4, D: 100000, Seed: 1}, false},
		{"T5.I2.D250", gen.Params{T: 5, I: 2, D: 250, Seed: 1}, false},
		{"T10.I6.D2M", gen.Params{T: 10, I: 6, D: 2000000, Seed: 1}, false},
		{"bogus", gen.Params{}, true},
		{"T10.I4", gen.Params{}, true},
		{"T10.I4.D100X", gen.Params{}, true},
	}
	for _, c := range cases {
		got, err := parseGenSpec(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseGenSpec(%q) should fail", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseGenSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseGenSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// base returns the default option set the end-to-end cases tweak.
func base() cliOptions {
	return cliOptions{
		GenSpec: "T5.I2.D300", Support: 0.02, Algo: "ccpd", Procs: 2,
		Balance: "bitonic", Hash: "bitonic", Counter: "private",
		DBPart: "block", SC: true, Threshold: 8, ChunkSize: 256, TopN: 3,
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Suppress the informational prints.
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	for _, algo := range []string{"seq", "ccpd", "pccd", "dhp", "partition", "countdist", "eclat", "vbit", "auto"} {
		o := base()
		o.Algo = algo
		o.RuleConf = 0.8
		o.Verbose = true
		if err := run(o); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
	// Dynamic counting partitions through the CLI surface.
	for _, dbpart := range []string{"workload", "dynamic", "stealing"} {
		o := base()
		o.DBPart = dbpart
		o.ChunkSize = 32
		o.Verbose = true
		if err := run(o); err != nil {
			t.Errorf("dbpart %s: %v", dbpart, err)
		}
	}
	{
		o := base()
		o.DBPart = "nope"
		if err := run(o); err == nil {
			t.Error("unknown -dbpart should fail")
		}
	}
	// Database file path.
	d, err := gen.Generate(gen.Params{T: 5, I: 2, D: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.ardb")
	if err := d.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	{
		o := base()
		o.GenSpec = ""
		o.DBPath = path
		o.Algo = "seq"
		o.Procs = 1
		o.Hash = "interleaved"
		o.SC = false
		if err := run(o); err != nil {
			t.Error(err)
		}
	}
	// Error paths.
	{
		o := base()
		o.GenSpec = ""
		if err := run(o); err == nil {
			t.Error("missing -db/-gen should fail")
		}
	}
	{
		o := base()
		o.Algo = "nope"
		if err := run(o); err == nil {
			t.Error("unknown algo should fail")
		}
	}
	{
		o := base()
		o.GenSpec = ""
		o.DBPath = "/nonexistent/x.ardb"
		if err := run(o); err == nil {
			t.Error("missing file should fail")
		}
	}
}

// TestRunSegmentedStore drives the out-of-core path through the CLI surface:
// a segmented -db routes to the streaming miners (ccpd, vbit, auto), honors
// -mem-budget/-mmap, and rejects engines without an out-of-core path.
func TestRunSegmentedStore(t *testing.T) {
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	d, err := gen.Generate(gen.Params{T: 5, I: 2, D: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.arseg")
	if err := seg.WriteDatabase(path, d, seg.WriterOptions{SegTx: 150}); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"ccpd", "vbit", "auto"} {
		o := base()
		o.GenSpec = ""
		o.DBPath = path
		o.Algo = algo
		o.MemBudget = "64K"
		o.RuleConf = 0.8
		if err := run(o); err != nil {
			t.Errorf("segmented algo %s: %v", algo, err)
		}
	}
	{
		o := base()
		o.GenSpec = ""
		o.DBPath = path
		o.MMap = true
		o.DBPart = "dynamic"
		o.ChunkSize = 32
		if err := run(o); err != nil {
			// mmap may be unavailable on some platforms; only real mining
			// failures count.
			if !strings.Contains(err.Error(), "unsupported") {
				t.Errorf("segmented mmap: %v", err)
			}
		}
	}
	{
		o := base()
		o.GenSpec = ""
		o.DBPath = path
		o.Algo = "seq"
		if err := run(o); err == nil || !strings.Contains(err.Error(), "segmented") {
			t.Errorf("segmented seq: err = %v, want engine rejection", err)
		}
	}
	{
		o := base()
		o.GenSpec = ""
		o.DBPath = path
		o.MemBudget = "banana"
		if err := run(o); err == nil || !strings.Contains(err.Error(), "mem-budget") {
			t.Errorf("bad budget: err = %v, want usage error", err)
		}
	}
	{
		o := base() // -gen with -mem-budget: not a segmented store
		o.MemBudget = "64K"
		if err := run(o); err == nil {
			t.Error("-mem-budget without a segmented -db should fail")
		}
	}
}

// TestParseByteSize pins the K/M/G suffix parser.
func TestParseByteSize(t *testing.T) {
	good := map[string]int64{
		"512":  512,
		"64K":  64 << 10,
		"512m": 512 << 20,
		"2G":   2 << 30,
	}
	for in, want := range good {
		got, err := parseByteSize(in)
		if err != nil || got != want {
			t.Errorf("parseByteSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"", "K", "-5M", "0", "1.5G", "banana"} {
		if _, err := parseByteSize(in); err == nil {
			t.Errorf("parseByteSize(%q) should fail", in)
		}
	}
}

// TestValidateFlags pins the CLI validation contract: out-of-range flag
// values are rejected up front as usage errors (exit code 2 from main), and
// the boundary values inside the valid range are accepted.
func TestValidateFlags(t *testing.T) {
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	cases := []struct {
		name  string
		tweak func(o *cliOptions)
	}{
		{"support zero", func(o *cliOptions) { o.Support = 0 }},
		{"support negative", func(o *cliOptions) { o.Support = -0.1 }},
		{"support above one", func(o *cliOptions) { o.Support = 1.5 }},
		{"procs zero", func(o *cliOptions) { o.Procs = 0 }},
		{"procs negative", func(o *cliOptions) { o.Procs = -3 }},
		{"chunk zero", func(o *cliOptions) { o.ChunkSize = 0 }},
		{"chunk negative", func(o *cliOptions) { o.ChunkSize = -1 }},
		{"maxk negative", func(o *cliOptions) { o.MaxK = -1 }},
		{"max-candidates negative", func(o *cliOptions) { o.MaxCands = -1 }},
		{"threshold zero", func(o *cliOptions) { o.Threshold = 0 }},
		{"resume without checkpoint", func(o *cliOptions) { o.Resume = true }},
		{"checkpoint with seq", func(o *cliOptions) { o.Checkpoint = "x.ckpt"; o.Algo = "seq" }},
	}
	for _, c := range cases {
		o := base()
		c.tweak(&o)
		err := run(o)
		if err == nil {
			t.Errorf("%s: run should fail", c.name)
			continue
		}
		var ue *usageError
		if !errors.As(err, &ue) {
			t.Errorf("%s: error %v is not a usage error (would exit 1, want 2)", c.name, err)
		}
	}

	// Boundary values inside the range must pass validation.
	for _, c := range []struct {
		name  string
		tweak func(o *cliOptions)
	}{
		{"support one", func(o *cliOptions) { o.Support = 1 }},
		{"procs one", func(o *cliOptions) { o.Procs = 1 }},
		{"chunk one", func(o *cliOptions) { o.ChunkSize = 1 }},
	} {
		o := base()
		c.tweak(&o)
		if err := run(o); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

// TestRunCheckpointResume drives the kill-and-resume recipe through the CLI
// surface: a -maxk-bounded run leaves a checkpoint, and -resume with the
// bound lifted completes the mine with the same frequent-set counts as a
// straight-through run.
func TestRunCheckpointResume(t *testing.T) {
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	o := base()
	o.Checkpoint = ckpt
	o.MaxK = 2
	if err := run(o); err != nil {
		t.Fatalf("bounded run: %v", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	o.MaxK = 0
	o.Resume = true
	if err := run(o); err != nil {
		t.Fatalf("resume: %v", err)
	}
}

func TestRunTraceAndMetrics(t *testing.T) {
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.txt")
	o := base()
	o.GenSpec = "T5.I2.D500"
	o.Procs = 4
	o.DBPart = "stealing"
	o.Counter = "atomic"
	o.ChunkSize = 16
	o.TracePath = tracePath
	o.MetricsTo = metricsPath
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("-trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("-trace output has no events")
	}

	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"armine_chunks_claimed_total", "armine_frequent{k="} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("-metrics output missing %q", want)
		}
	}

	// Tracing a non-parallel algorithm is a usage error.
	o = base()
	o.Algo = "seq"
	o.TracePath = tracePath
	if err := run(o); err == nil {
		t.Error("-trace with -algo seq should fail")
	}
}

// TestRunTraceVBit drives the observability surface through the vertical
// engine: -algo vbit must produce a valid trace with events and a metrics
// snapshot through the unchanged obs plumbing.
func TestRunTraceVBit(t *testing.T) {
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.txt")
	o := base()
	o.Algo = "vbit"
	o.GenSpec = "T5.I2.D500"
	o.Procs = 4
	o.TracePath = tracePath
	o.MetricsTo = metricsPath
	o.Verbose = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("-trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("-trace output has no events")
	}
	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "armine_frequent{k=") {
		t.Error("-metrics output missing armine_frequent series")
	}
	// -algo auto resolves to a parallel engine, so tracing it is legal.
	o = base()
	o.Algo = "auto"
	o.TracePath = filepath.Join(dir, "trace2.json")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}
