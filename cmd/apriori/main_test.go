package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
)

func TestParseGenSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    gen.Params
		wantErr bool
	}{
		{"T10.I4.D100K", gen.Params{T: 10, I: 4, D: 100000, Seed: 1}, false},
		{"T5.I2.D250", gen.Params{T: 5, I: 2, D: 250, Seed: 1}, false},
		{"T10.I6.D2M", gen.Params{T: 10, I: 6, D: 2000000, Seed: 1}, false},
		{"bogus", gen.Params{}, true},
		{"T10.I4", gen.Params{}, true},
		{"T10.I4.D100X", gen.Params{}, true},
	}
	for _, c := range cases {
		got, err := parseGenSpec(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseGenSpec(%q) should fail", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseGenSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseGenSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Suppress the informational prints.
	old := os.Stdout
	null, _ := os.Open(os.DevNull)
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() { os.Stdout = old; null.Close(); devnull.Close() }()

	for _, algo := range []string{"seq", "ccpd", "pccd", "dhp", "partition", "countdist"} {
		if err := run("", "T5.I2.D300", 0.02, algo, 2, "bitonic", "bitonic",
			"private", "block", 0, true, 8, 0, 0.8, 3, true); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
	// Dynamic counting partitions through the CLI surface.
	for _, dbpart := range []string{"workload", "dynamic", "stealing"} {
		if err := run("", "T5.I2.D300", 0.02, "ccpd", 2, "bitonic", "bitonic",
			"private", dbpart, 32, true, 8, 0, 0, 0, true); err != nil {
			t.Errorf("dbpart %s: %v", dbpart, err)
		}
	}
	if err := run("", "T5.I2.D300", 0.02, "ccpd", 2, "bitonic", "bitonic",
		"private", "nope", 0, true, 8, 0, 0, 0, false); err == nil {
		t.Error("unknown -dbpart should fail")
	}
	// Database file path.
	d, err := gen.Generate(gen.Params{T: 5, I: 2, D: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.ardb")
	if err := d.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", 0.02, "seq", 1, "block", "interleaved",
		"locked", "block", 0, false, 4, 8, 0, 0, false); err != nil {
		t.Error(err)
	}
	// Error paths.
	if err := run("", "", 0.02, "seq", 1, "", "", "", "block", 0, false, 0, 0, 0, 0, false); err == nil {
		t.Error("missing -db/-gen should fail")
	}
	if err := run("", "T5.I2.D200", 0.02, "nope", 1, "", "", "", "block", 0, false, 0, 0, 0, 0, false); err == nil {
		t.Error("unknown algo should fail")
	}
	if err := run("/nonexistent/x.ardb", "", 0.02, "seq", 1, "", "", "", "block", 0, false, 0, 0, 0, 0, false); err == nil {
		t.Error("missing file should fail")
	}
}
