// Command apriori mines association rules from a database file (or a
// freshly generated synthetic database) using the sequential algorithm or
// the parallel CCPD/PCCD algorithms, with every optimization switchable
// from the command line.
//
// Examples:
//
//	apriori -db T10.I4.D100K.ardb -support 0.005 -procs 8
//	apriori -gen T10.I4.D10K -support 0.01 -algo pccd -rules 0.9
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"

	"repro/internal/apriori"
	"repro/internal/baseline"
	"repro/internal/ccpd"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/hashtree"
	"repro/internal/rules"
)

var genRe = regexp.MustCompile(`^T(\d+)\.I(\d+)\.D(\d+)([KM]?)$`)

func parseGenSpec(s string) (gen.Params, error) {
	m := genRe.FindStringSubmatch(s)
	if m == nil {
		return gen.Params{}, fmt.Errorf("bad -gen spec %q (want e.g. T10.I4.D100K)", s)
	}
	t, _ := strconv.Atoi(m[1])
	i, _ := strconv.Atoi(m[2])
	d, _ := strconv.Atoi(m[3])
	switch m[4] {
	case "K":
		d *= 1000
	case "M":
		d *= 1000000
	}
	return gen.Params{T: t, I: i, D: d, Seed: 1}, nil
}

func main() {
	dbPath := flag.String("db", "", "database file (binary format)")
	genSpec := flag.String("gen", "", "generate a synthetic database, e.g. T10.I4.D10K")
	support := flag.Float64("support", 0.005, "minimum support fraction")
	algo := flag.String("algo", "ccpd", "algorithm: seq | ccpd | pccd | dhp | partition | countdist")
	procs := flag.Int("procs", 4, "processors (parallel algorithms)")
	balance := flag.String("balance", "bitonic", "computation balancing: block | interleaved | bitonic")
	hash := flag.String("hash", "bitonic", "hash tree balancing: interleaved | bitonic")
	counter := flag.String("counter", "private", "counter mode: locked | atomic | private")
	dbpart := flag.String("dbpart", "block", "counting DB partition: block | workload | dynamic | stealing")
	chunk := flag.Int("chunk", 0, "transactions per dynamic chunk (0 = default 256)")
	sc := flag.Bool("shortcircuit", true, "short-circuited subset checking")
	threshold := flag.Int("threshold", 8, "hash tree leaf threshold")
	fanout := flag.Int("fanout", 0, "hash tree fanout (0 = adaptive)")
	ruleConf := flag.Float64("rules", 0, "generate rules at this min confidence (0 = skip)")
	topN := flag.Int("top", 10, "rules to print")
	verbose := flag.Bool("v", false, "per-iteration details")
	flag.Parse()

	if err := run(*dbPath, *genSpec, *support, *algo, *procs, *balance, *hash,
		*counter, *dbpart, *chunk, *sc, *threshold, *fanout, *ruleConf, *topN, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "apriori:", err)
		os.Exit(1)
	}
}

func run(dbPath, genSpec string, support float64, algo string, procs int,
	balance, hash, counter, dbpart string, chunk int, sc bool, threshold, fanout int,
	ruleConf float64, topN int, verbose bool) error {

	var d *db.Database
	switch {
	case dbPath != "":
		var err error
		if d, err = db.ReadFile(dbPath); err != nil {
			return err
		}
	case genSpec != "":
		p, err := parseGenSpec(genSpec)
		if err != nil {
			return err
		}
		if d, err = gen.Generate(p); err != nil {
			return err
		}
		fmt.Printf("generated %s: %d transactions\n", p.Name(), d.Len())
	default:
		return fmt.Errorf("need -db or -gen")
	}

	opts := apriori.Options{
		MinSupport: support, Threshold: threshold, Fanout: fanout, ShortCircuit: sc,
	}
	if hash == "bitonic" {
		opts.Hash = hashtree.HashBitonic
	}

	var res *apriori.Result
	var stats *ccpd.Stats
	var err error
	switch algo {
	case "seq":
		res, err = apriori.Mine(d, opts)
	case "dhp":
		var st *baseline.DHPStats
		res, st, err = baseline.MineDHP(d, baseline.DHPOptions{Mining: opts})
		if err == nil {
			fmt.Printf("dhp filter: %d -> %d candidates\n", st.CandidatesBefore, st.CandidatesAfter)
		}
	case "partition":
		var st *baseline.PartitionStats
		res, st, err = baseline.MinePartition(d, baseline.PartitionOptions{Mining: opts, Chunks: procs})
		if err == nil {
			fmt.Printf("partition: %d chunks, %d local candidates, %d scans\n",
				st.Chunks, st.LocalCandidates, st.Scans)
		}
	case "countdist":
		var st *baseline.CDStats
		res, st, err = baseline.MineCD(d, baseline.CDOptions{Mining: opts, Procs: procs})
		if err == nil {
			fmt.Printf("count distribution: %d all-reduce rounds, %.1f KB exchanged\n",
				st.Rounds, float64(st.BytesExchanged)/1024)
		}
	case "ccpd", "pccd":
		po := ccpd.Options{Options: opts, Procs: procs}
		switch balance {
		case "interleaved":
			po.Balance = ccpd.BalanceInterleaved
		case "bitonic":
			po.Balance = ccpd.BalanceBitonic
		}
		switch counter {
		case "locked":
			po.Counter = hashtree.CounterLocked
		case "atomic":
			po.Counter = hashtree.CounterAtomic
		case "private":
			po.Counter = hashtree.CounterPrivate
		}
		switch dbpart {
		case "block":
			po.DBPart = ccpd.PartitionBlock
		case "workload":
			po.DBPart = ccpd.PartitionWorkload
		case "dynamic":
			po.DBPart = ccpd.PartitionDynamic
		case "stealing":
			po.DBPart = ccpd.PartitionStealing
		default:
			return fmt.Errorf("unknown -dbpart %q", dbpart)
		}
		po.ChunkSize = chunk
		if algo == "ccpd" {
			res, stats, err = ccpd.Mine(d, po)
		} else {
			res, stats, err = ccpd.MinePCCD(d, po)
		}
	default:
		return fmt.Errorf("unknown -algo %q", algo)
	}
	if err != nil {
		return err
	}

	fmt.Printf("min support: %d transactions (%.3f%%)\n", res.MinCount, support*100)
	fmt.Printf("frequent itemsets: %d\n", res.NumFrequent())
	for k := 1; k < len(res.ByK); k++ {
		if len(res.ByK[k]) > 0 {
			fmt.Printf("  F%-2d %6d\n", k, len(res.ByK[k]))
		}
	}
	if stats != nil {
		fmt.Printf("total time: %v (counting %v)\n", stats.Total, stats.TotalCount())
		if verbose {
			for _, it := range stats.PerIter {
				fmt.Printf("  k=%-2d cands=%-7d freq=%-7d gen=%v build=%v count=%v reduce=%v\n",
					it.K, it.Candidates, it.Frequent, it.CandGen, it.TreeBuild, it.Count, it.Reduce)
				if it.ChunksClaimed != nil {
					var steals int64
					for _, s := range it.Steals {
						steals += s
					}
					fmt.Printf("       chunks=%v steals=%d idlework=%d countidle=%v\n",
						it.ChunksClaimed, steals, it.IdleWork(), it.CountIdle)
				}
			}
		}
	}

	if ruleConf > 0 {
		rs := rules.Generate(res, rules.Options{MinConfidence: ruleConf, DBSize: d.Len()})
		fmt.Printf("rules at confidence >= %.2f: %d\n", ruleConf, len(rs))
		for i, r := range rs {
			if i >= topN {
				break
			}
			fmt.Printf("  %v\n", r)
		}
	}
	return nil
}
