// Command apriori mines association rules from a database file (or a
// freshly generated synthetic database) through the unified engine registry:
// the sequential algorithm, the parallel CCPD/PCCD algorithms, the vertical
// engines (eclat, vbit) and the sampling evaluation all dispatch through
// engine.Miner, with every optimization switchable from the command line.
// -algo auto hands the choice to the cost-based planner, which picks engine,
// counting partition and chunk size from the database's statistics (density,
// skew, size) and the -mem-budget.
//
// Examples:
//
//	apriori -db T10.I4.D100K.ardb -support 0.005 -procs 8
//	apriori -gen T10.I4.D10K -support 0.01 -algo pccd -rules 0.9
//	apriori -gen T10.I4.D10K -procs 4 -dbpart stealing -trace out.json
//	apriori -gen T20.I6.D10K -support 0.01 -algo auto -v
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"

	"repro/internal/apriori"
	"repro/internal/baseline"
	"repro/internal/ccpd"
	"repro/internal/db"
	"repro/internal/db/seg"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/hashtree"
	"repro/internal/obs"
	"repro/internal/rules"
)

var genRe = regexp.MustCompile(`^T(\d+)\.I(\d+)\.D(\d+)([KM]?)$`)

func parseGenSpec(s string) (gen.Params, error) {
	m := genRe.FindStringSubmatch(s)
	if m == nil {
		return gen.Params{}, fmt.Errorf("bad -gen spec %q (want e.g. T10.I4.D100K)", s)
	}
	t, _ := strconv.Atoi(m[1])
	i, _ := strconv.Atoi(m[2])
	d, _ := strconv.Atoi(m[3])
	switch m[4] {
	case "K":
		d *= 1000
	case "M":
		d *= 1000000
	}
	return gen.Params{T: t, I: i, D: d, Seed: 1}, nil
}

// cliOptions carries every flag of the command. One struct rather than a
// positional parameter list: run() is exercised directly by the tests, and
// adding a flag must not ripple through every call site.
type cliOptions struct {
	DBPath     string  // -db: database file
	GenSpec    string  // -gen: synthetic database spec
	Support    float64 // -support
	Algo       string  // -algo
	Procs      int     // -procs
	Balance    string  // -balance
	Hash       string  // -hash
	Counter    string  // -counter
	DBPart     string  // -dbpart
	ChunkSize  int     // -chunk
	SC         bool    // -shortcircuit
	Threshold  int     // -threshold
	Fanout     int     // -fanout
	MaxK       int     // -maxk: iteration bound (0 = fixpoint)
	MaxCands   int     // -max-candidates: per-tree candidate budget (0 = unlimited)
	Checkpoint string  // -checkpoint: per-iteration snapshot path (ccpd only)
	Resume     bool    // -resume: continue from -checkpoint instead of starting over
	RuleConf   float64 // -rules
	TopN       int     // -top
	Verbose    bool    // -v
	TracePath  string  // -trace: Chrome trace JSON output (parallel engines)
	MetricsTo  string  // -metrics: Prometheus-text snapshot output (parallel engines)
	MemBudget  string  // -mem-budget: resident-segment byte cap for segmented stores (e.g. 512M)
	MMap       bool    // -mmap: serve segmented stores from a memory mapping
}

// parseByteSize parses "512M"-style sizes (K/M/G suffixes, base 1024).
func parseByteSize(s string) (int64, error) {
	mult := int64(1)
	num := s
	if n := len(s); n > 0 {
		switch s[n-1] {
		case 'k', 'K':
			mult, num = 1<<10, s[:n-1]
		case 'm', 'M':
			mult, num = 1<<20, s[:n-1]
		case 'g', 'G':
			mult, num = 1<<30, s[:n-1]
		}
	}
	v, err := strconv.ParseInt(num, 10, 64)
	if err != nil || v <= 0 {
		return 0, usagef("bad -mem-budget %q (want e.g. 512M, 2G)", s)
	}
	return v * mult, nil
}

// usageError marks a command-line validation failure; main exits with
// status 2 for these (the conventional usage-error code), versus 1 for
// runtime failures.
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

func usagef(format string, args ...any) error {
	return &usageError{msg: fmt.Sprintf(format, args...)}
}

// validate rejects option values that can only be mistakes, before any work
// (or worse, a silent misrun: -support 0 used to mine every itemset at
// min count 1, and -procs 0 was silently bumped to 1 deep in withDefaults).
func validate(o cliOptions) error {
	if o.Support <= 0 || o.Support > 1 {
		return usagef("-support must be a fraction in (0, 1], got %g", o.Support)
	}
	if o.Procs <= 0 {
		return usagef("-procs must be positive, got %d", o.Procs)
	}
	if o.ChunkSize <= 0 {
		return usagef("-chunk must be positive, got %d", o.ChunkSize)
	}
	if o.MaxK < 0 {
		return usagef("-maxk must be >= 0 (0 = run to fixpoint), got %d", o.MaxK)
	}
	if o.MaxCands < 0 {
		return usagef("-max-candidates must be >= 0 (0 = unlimited), got %d", o.MaxCands)
	}
	if o.Threshold <= 0 {
		return usagef("-threshold must be positive, got %d", o.Threshold)
	}
	if o.Resume && o.Checkpoint == "" {
		return usagef("-resume requires -checkpoint")
	}
	if o.Checkpoint != "" && o.Algo != "ccpd" {
		return usagef("-checkpoint/-resume require -algo ccpd (got %q)", o.Algo)
	}
	return nil
}

func main() {
	var o cliOptions
	flag.StringVar(&o.DBPath, "db", "", "database file (binary format)")
	flag.StringVar(&o.GenSpec, "gen", "", "generate a synthetic database, e.g. T10.I4.D10K")
	flag.Float64Var(&o.Support, "support", 0.005, "minimum support fraction")
	flag.StringVar(&o.Algo, "algo", "ccpd", "algorithm: seq | ccpd | pccd | eclat | vbit | sampling | dhp | partition | countdist | auto (planner)")
	flag.IntVar(&o.Procs, "procs", 4, "processors (parallel algorithms)")
	flag.StringVar(&o.Balance, "balance", "bitonic", "computation balancing: block | interleaved | bitonic")
	flag.StringVar(&o.Hash, "hash", "bitonic", "hash tree balancing: interleaved | bitonic")
	flag.StringVar(&o.Counter, "counter", "private", "counter mode: locked | atomic | private")
	flag.StringVar(&o.DBPart, "dbpart", "block", "counting DB partition: block | workload | dynamic | stealing")
	flag.IntVar(&o.ChunkSize, "chunk", 256, "transactions per dynamic chunk / cancellation poll stride")
	flag.BoolVar(&o.SC, "shortcircuit", true, "short-circuited subset checking")
	flag.IntVar(&o.Threshold, "threshold", 8, "hash tree leaf threshold")
	flag.IntVar(&o.Fanout, "fanout", 0, "hash tree fanout (0 = adaptive)")
	flag.IntVar(&o.MaxK, "maxk", 0, "stop after itemsets of this size (0 = run to fixpoint)")
	flag.IntVar(&o.MaxCands, "max-candidates", 0, "max candidates held in one hash tree; larger iterations run batched with one DB pass per batch (0 = unlimited)")
	flag.StringVar(&o.Checkpoint, "checkpoint", "", "write a resumable snapshot here after every iteration (ccpd)")
	flag.BoolVar(&o.Resume, "resume", false, "continue from the -checkpoint snapshot instead of starting over")
	flag.Float64Var(&o.RuleConf, "rules", 0, "generate rules at this min confidence (0 = skip)")
	flag.IntVar(&o.TopN, "top", 10, "rules to print")
	flag.BoolVar(&o.Verbose, "v", false, "per-iteration details")
	flag.StringVar(&o.TracePath, "trace", "", "write a Chrome trace_event JSON timeline here (parallel engines)")
	flag.StringVar(&o.MetricsTo, "metrics", "", "write a Prometheus-text metrics snapshot here (parallel engines)")
	flag.StringVar(&o.MemBudget, "mem-budget", "", "out-of-core residency budget for segmented -db stores, e.g. 512M (default: double-buffered)")
	flag.BoolVar(&o.MMap, "mmap", false, "serve a segmented -db store from a memory mapping instead of read-at I/O")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "apriori:", err)
		var ue *usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// baselineAlgos are the Section 7 comparison algorithms (DHP, Partition,
// Count Distribution): reference implementations with their own stats, not
// engines — they stay outside the registry and have no out-of-core path.
var baselineAlgos = map[string]bool{"dhp": true, "partition": true, "countdist": true}

func run(o cliOptions) error {
	if err := validate(o); err != nil {
		return err
	}

	// Open the data source: an in-memory database, or a segmented reader
	// for out-of-core stores.
	var (
		d *db.Database
		r *seg.Reader
	)
	switch {
	case o.DBPath != "":
		segmented, err := seg.IsSegmented(o.DBPath)
		if err != nil {
			return err
		}
		if segmented {
			if o.MMap {
				r, err = seg.OpenMapped(o.DBPath)
			} else {
				r, err = seg.Open(o.DBPath)
			}
			if err != nil {
				return err
			}
			defer r.Close()
			fmt.Printf("segmented store: %d transactions, %d segments, max segment %.1f MB\n",
				r.NumTx(), r.NumSegments(), float64(r.MaxSegmentBytes())/(1<<20))
			break
		}
		if o.MemBudget != "" || o.MMap {
			return usagef("-mem-budget/-mmap require a segmented store (write one with questgen -seg)")
		}
		if d, err = db.ReadFile(o.DBPath); err != nil {
			return err
		}
	case o.GenSpec != "":
		if o.MemBudget != "" || o.MMap {
			return usagef("-mem-budget/-mmap require a segmented -db store (write one with questgen -seg)")
		}
		p, err := parseGenSpec(o.GenSpec)
		if err != nil {
			return err
		}
		if d, err = gen.Generate(p); err != nil {
			return err
		}
		fmt.Printf("generated %s: %d transactions\n", p.Name(), d.Len())
	default:
		return fmt.Errorf("need -db or -gen")
	}

	var budget int64
	if o.MemBudget != "" {
		var err error
		if budget, err = parseByteSize(o.MemBudget); err != nil {
			return err
		}
	}

	spec, err := buildSpec(o)
	if err != nil {
		return err
	}
	spec.MemBudget = budget

	// -algo auto: one planner call covers both the in-RAM and the segmented
	// path (this used to be two hand-rolled selection sites, one of which
	// sampled only segment 0 and ignored the budget).
	algo := o.Algo
	if algo == "auto" {
		var info engine.DBInfo
		if r != nil {
			if info, err = engine.CharacterizeReader(r); err != nil {
				return err
			}
		} else {
			info = engine.Characterize(d)
		}
		plan := engine.Planner{Procs: o.Procs, MemBudget: budget}.Plan(info)
		fmt.Printf("planner: density=%.5f (avg len %.1f over %d items, tail mass %.2f) -> %s\n",
			info.Density, info.AvgLen, info.NumItems, info.TailMass, plan)
		if o.Verbose {
			for _, e := range plan.Estimates {
				feas := "feasible"
				if !e.Feasible {
					feas = "infeasible"
				}
				fmt.Printf("  estimate %-5s cost=%-12d arena=%-12d %s: %s\n",
					e.Engine, e.Cost, e.ArenaBytes, feas, e.Note)
			}
		}
		algo = plan.Engine
		// The planner's partition and chunk choices apply unless the user
		// overrode the defaults explicitly.
		if o.DBPart == "block" {
			spec.DBPart = plan.DBPart
		}
		if o.ChunkSize == 256 {
			spec.ChunkSize = plan.ChunkSize
		}
	}

	if baselineAlgos[algo] {
		if r != nil {
			return usagef("%s is a baseline without an out-of-core path; segmented stores mine with %v", algo, engine.SegmentedNames())
		}
		if o.TracePath != "" || o.MetricsTo != "" {
			return fmt.Errorf("-trace/-metrics require a parallel engine (got %q)", algo)
		}
		res, err := runBaseline(algo, d, spec.Mining, o)
		if err != nil {
			return err
		}
		return report(res, nil, o, d, r)
	}

	m, ok := engine.Lookup(algo)
	if !ok {
		return fmt.Errorf("unknown -algo %q", o.Algo)
	}
	caps := m.Caps()
	var rec *obs.Recorder
	if o.TracePath != "" || o.MetricsTo != "" {
		if !caps.Parallel {
			return fmt.Errorf("-trace/-metrics require a parallel engine: one of ccpd, pccd, vbit or auto (got %q)", algo)
		}
		rec = obs.NewRecorder(o.Procs)
		spec.Obs = rec
	}

	var res *apriori.Result
	var stats *engine.Stats
	switch {
	case o.Resume:
		rm, ok := engine.AsResumer(m)
		if !ok {
			return usagef("-resume requires an engine with checkpoint support (got %q)", algo)
		}
		res, stats, err = rm.Resume(context.Background(), o.Checkpoint, d, spec)
	default:
		res, stats, err = engine.Dispatch(context.Background(), algo, d, r, spec)
	}
	if err != nil {
		return err
	}
	if err := report(res, stats, o, d, r); err != nil {
		return err
	}
	return exportObs(rec, o.TracePath, o.MetricsTo)
}

// buildSpec maps the CLI's string knobs onto the engine-independent Spec.
func buildSpec(o cliOptions) (engine.Spec, error) {
	s := engine.Spec{
		Mining: apriori.Options{
			MinSupport: o.Support, Threshold: o.Threshold, Fanout: o.Fanout,
			ShortCircuit: o.SC, MaxK: o.MaxK, MaxCandidatesInMemory: o.MaxCands,
		},
		Procs: o.Procs, ChunkSize: o.ChunkSize, Checkpoint: o.Checkpoint,
	}
	if o.Hash == "bitonic" {
		s.Mining.Hash = hashtree.HashBitonic
	}
	switch o.Balance {
	case "interleaved":
		s.Balance = ccpd.BalanceInterleaved
	case "bitonic":
		s.Balance = ccpd.BalanceBitonic
	}
	switch o.Counter {
	case "locked":
		s.Counter = hashtree.CounterLocked
	case "atomic":
		s.Counter = hashtree.CounterAtomic
	case "private":
		s.Counter = hashtree.CounterPrivate
	}
	switch o.DBPart {
	case "block":
		s.DBPart = ccpd.PartitionBlock
	case "workload":
		s.DBPart = ccpd.PartitionWorkload
	case "dynamic":
		s.DBPart = ccpd.PartitionDynamic
	case "stealing":
		s.DBPart = ccpd.PartitionStealing
	default:
		return s, fmt.Errorf("unknown -dbpart %q", o.DBPart)
	}
	return s, nil
}

// runBaseline runs one of the Section 7 baseline algorithms, printing its
// algorithm-specific statistics.
func runBaseline(algo string, d *db.Database, opts apriori.Options, o cliOptions) (*apriori.Result, error) {
	switch algo {
	case "dhp":
		res, st, err := baseline.MineDHP(d, baseline.DHPOptions{Mining: opts})
		if err == nil {
			fmt.Printf("dhp filter: %d -> %d candidates\n", st.CandidatesBefore, st.CandidatesAfter)
		}
		return res, err
	case "partition":
		res, st, err := baseline.MinePartition(d, baseline.PartitionOptions{Mining: opts, Chunks: o.Procs})
		if err == nil {
			fmt.Printf("partition: %d chunks, %d local candidates, %d scans\n",
				st.Chunks, st.LocalCandidates, st.Scans)
		}
		return res, err
	default: // countdist; baselineAlgos gates the key set
		res, st, err := baseline.MineCD(d, baseline.CDOptions{Mining: opts, Procs: o.Procs})
		if err == nil {
			fmt.Printf("count distribution: %d all-reduce rounds, %.1f KB exchanged\n",
				st.Rounds, float64(st.BytesExchanged)/1024)
		}
		return res, err
	}
}

// report prints the frequent sets, the engine's normalized (and, with -v,
// detailed) statistics, and the generated rules — one print path for every
// engine and both data sources.
func report(res *apriori.Result, stats *engine.Stats, o cliOptions, d *db.Database, r *seg.Reader) error {
	// rules.Options.DBSize is a wide int64, so a segmented store's full
	// transaction count flows into SupportFrac/Lift without narrowing (the
	// old int conversion silently truncated past 2³¹ on 32-bit builds).
	var dbSize int64
	if d != nil {
		dbSize = int64(d.Len())
	} else if r != nil {
		dbSize = r.NumTx()
	}

	fmt.Printf("min support: %d transactions (%.3f%%)\n", res.MinCount, o.Support*100)
	fmt.Printf("frequent itemsets: %d\n", res.NumFrequent())
	for k := 1; k < len(res.ByK); k++ {
		if len(res.ByK[k]) > 0 {
			fmt.Printf("  F%-2d %6d\n", k, len(res.ByK[k]))
		}
	}
	if stats != nil {
		printStats(stats, o.Verbose)
	}

	if o.RuleConf > 0 {
		rs := rules.Generate(res, rules.Options{MinConfidence: o.RuleConf, DBSize: dbSize})
		fmt.Printf("rules at confidence >= %.2f: %d\n", o.RuleConf, len(rs))
		for i, rl := range rs {
			if i >= o.TopN {
				break
			}
			fmt.Printf("  %v\n", rl)
		}
	}
	return nil
}

// printStats renders the normalized engine statistics, with the raw
// per-engine detail behind -v.
func printStats(st *engine.Stats, verbose bool) {
	switch {
	case st.VBit != nil:
		fmt.Printf("total time: %v (class DFS %v)\n", st.Total, st.Count)
		if verbose {
			v := st.VBit
			fmt.Printf("  classes=%d columns=%d bitmap/%d tidlist modeltime=%d totalwork=%d\n",
				v.Classes, v.DenseItems, v.SparseItems, v.ModelTime(), v.TotalWork())
		}
	case st.VBitSegmented != nil:
		fmt.Printf("total time: %v (%d levels)\n", st.Total, st.VBitSegmented.Levels)
	case st.CCPD != nil:
		fmt.Printf("total time: %v (counting %v)\n", st.Total, st.Count)
		if verbose {
			for _, it := range st.CCPD.PerIter {
				fmt.Printf("  k=%-2d cands=%-7d freq=%-7d gen=%v build=%v count=%v reduce=%v\n",
					it.K, it.Candidates, it.Frequent, it.CandGen, it.TreeBuild, it.Count, it.Reduce)
				if it.ChunksClaimed != nil {
					var steals int64
					for _, s := range it.Steals {
						steals += s
					}
					fmt.Printf("       chunks=%v steals=%d idlework=%d countidle=%v\n",
						it.ChunksClaimed, steals, it.IdleWork(), it.CountIdle)
				}
			}
		}
	case st.Sampling != nil:
		acc := st.Sampling
		fmt.Printf("total time: %v\n", st.Total)
		fmt.Printf("sampling: %d rows sampled, precision %.3f recall %.3f (TP %d FP %d FN %d)\n",
			acc.SampleSize, acc.Precision(), acc.Recall(),
			acc.TruePositives, acc.FalsePositives, acc.FalseNegatives)
	case st.Total > 0:
		fmt.Printf("total time: %v\n", st.Total)
	}
	if p := st.Pipeline; p != nil {
		mode := "sync"
		if p.Overlapped {
			mode = "double-buffered"
		}
		fmt.Printf("out-of-core: %d segment loads over %d passes, %d resident (%s), stall %.1f%%\n",
			p.Segments, p.Passes, p.Residents, mode, 100*p.StallFraction())
	}
}

// exportObs writes the recorded trace and/or metrics snapshot to the
// requested paths. A nil recorder (no -trace/-metrics) is a no-op.
func exportObs(rec *obs.Recorder, tracePath, metricsPath string) error {
	if rec == nil {
		return nil
	}
	write := func(path string, emit func(w io.Writer) error, what string) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", what, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%s written to %s\n", what, path)
		return nil
	}
	if err := write(tracePath, rec.WriteTrace, "trace"); err != nil {
		return err
	}
	return write(metricsPath, rec.WriteMetrics, "metrics")
}
