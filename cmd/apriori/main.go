// Command apriori mines association rules from a database file (or a
// freshly generated synthetic database) using the sequential algorithm,
// the parallel CCPD/PCCD algorithms, or the vertical engines (eclat,
// vbit), with every optimization switchable from the command line.
// -algo auto picks between the hash-tree and vertical bitmap engines from
// the database's density statistics.
//
// Examples:
//
//	apriori -db T10.I4.D100K.ardb -support 0.005 -procs 8
//	apriori -gen T10.I4.D10K -support 0.01 -algo pccd -rules 0.9
//	apriori -gen T10.I4.D10K -procs 4 -dbpart stealing -trace out.json
//	apriori -gen T20.I6.D10K -support 0.01 -algo auto -v
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"

	"repro/internal/apriori"
	"repro/internal/baseline"
	"repro/internal/ccpd"
	"repro/internal/db"
	"repro/internal/db/seg"
	"repro/internal/eclat"
	"repro/internal/gen"
	"repro/internal/hashtree"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/vbit"
)

var genRe = regexp.MustCompile(`^T(\d+)\.I(\d+)\.D(\d+)([KM]?)$`)

func parseGenSpec(s string) (gen.Params, error) {
	m := genRe.FindStringSubmatch(s)
	if m == nil {
		return gen.Params{}, fmt.Errorf("bad -gen spec %q (want e.g. T10.I4.D100K)", s)
	}
	t, _ := strconv.Atoi(m[1])
	i, _ := strconv.Atoi(m[2])
	d, _ := strconv.Atoi(m[3])
	switch m[4] {
	case "K":
		d *= 1000
	case "M":
		d *= 1000000
	}
	return gen.Params{T: t, I: i, D: d, Seed: 1}, nil
}

// cliOptions carries every flag of the command. One struct rather than a
// positional parameter list: run() is exercised directly by the tests, and
// adding a flag must not ripple through every call site.
type cliOptions struct {
	DBPath     string  // -db: database file
	GenSpec    string  // -gen: synthetic database spec
	Support    float64 // -support
	Algo       string  // -algo
	Procs      int     // -procs
	Balance    string  // -balance
	Hash       string  // -hash
	Counter    string  // -counter
	DBPart     string  // -dbpart
	ChunkSize  int     // -chunk
	SC         bool    // -shortcircuit
	Threshold  int     // -threshold
	Fanout     int     // -fanout
	MaxK       int     // -maxk: iteration bound (0 = fixpoint)
	MaxCands   int     // -max-candidates: per-tree candidate budget (0 = unlimited)
	Checkpoint string  // -checkpoint: per-iteration snapshot path (ccpd only)
	Resume     bool    // -resume: continue from -checkpoint instead of starting over
	RuleConf   float64 // -rules
	TopN       int     // -top
	Verbose    bool    // -v
	TracePath  string  // -trace: Chrome trace JSON output (ccpd/pccd/vbit/auto)
	MetricsTo  string  // -metrics: Prometheus-text snapshot output (ccpd/pccd/vbit/auto)
	MemBudget  string  // -mem-budget: resident-segment byte cap for segmented stores (e.g. 512M)
	MMap       bool    // -mmap: serve segmented stores from a memory mapping
}

// parseByteSize parses "512M"-style sizes (K/M/G suffixes, base 1024).
func parseByteSize(s string) (int64, error) {
	mult := int64(1)
	num := s
	if n := len(s); n > 0 {
		switch s[n-1] {
		case 'k', 'K':
			mult, num = 1<<10, s[:n-1]
		case 'm', 'M':
			mult, num = 1<<20, s[:n-1]
		case 'g', 'G':
			mult, num = 1<<30, s[:n-1]
		}
	}
	v, err := strconv.ParseInt(num, 10, 64)
	if err != nil || v <= 0 {
		return 0, usagef("bad -mem-budget %q (want e.g. 512M, 2G)", s)
	}
	return v * mult, nil
}

// usageError marks a command-line validation failure; main exits with
// status 2 for these (the conventional usage-error code), versus 1 for
// runtime failures.
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

func usagef(format string, args ...any) error {
	return &usageError{msg: fmt.Sprintf(format, args...)}
}

// validate rejects option values that can only be mistakes, before any work
// (or worse, a silent misrun: -support 0 used to mine every itemset at
// min count 1, and -procs 0 was silently bumped to 1 deep in withDefaults).
func validate(o cliOptions) error {
	if o.Support <= 0 || o.Support > 1 {
		return usagef("-support must be a fraction in (0, 1], got %g", o.Support)
	}
	if o.Procs <= 0 {
		return usagef("-procs must be positive, got %d", o.Procs)
	}
	if o.ChunkSize <= 0 {
		return usagef("-chunk must be positive, got %d", o.ChunkSize)
	}
	if o.MaxK < 0 {
		return usagef("-maxk must be >= 0 (0 = run to fixpoint), got %d", o.MaxK)
	}
	if o.MaxCands < 0 {
		return usagef("-max-candidates must be >= 0 (0 = unlimited), got %d", o.MaxCands)
	}
	if o.Threshold <= 0 {
		return usagef("-threshold must be positive, got %d", o.Threshold)
	}
	if o.Resume && o.Checkpoint == "" {
		return usagef("-resume requires -checkpoint")
	}
	if o.Checkpoint != "" && o.Algo != "ccpd" {
		return usagef("-checkpoint/-resume require -algo ccpd (got %q)", o.Algo)
	}
	return nil
}

func main() {
	var o cliOptions
	flag.StringVar(&o.DBPath, "db", "", "database file (binary format)")
	flag.StringVar(&o.GenSpec, "gen", "", "generate a synthetic database, e.g. T10.I4.D10K")
	flag.Float64Var(&o.Support, "support", 0.005, "minimum support fraction")
	flag.StringVar(&o.Algo, "algo", "ccpd", "algorithm: seq | ccpd | pccd | dhp | partition | countdist | eclat | vbit | auto")
	flag.IntVar(&o.Procs, "procs", 4, "processors (parallel algorithms)")
	flag.StringVar(&o.Balance, "balance", "bitonic", "computation balancing: block | interleaved | bitonic")
	flag.StringVar(&o.Hash, "hash", "bitonic", "hash tree balancing: interleaved | bitonic")
	flag.StringVar(&o.Counter, "counter", "private", "counter mode: locked | atomic | private")
	flag.StringVar(&o.DBPart, "dbpart", "block", "counting DB partition: block | workload | dynamic | stealing")
	flag.IntVar(&o.ChunkSize, "chunk", 256, "transactions per dynamic chunk / cancellation poll stride")
	flag.BoolVar(&o.SC, "shortcircuit", true, "short-circuited subset checking")
	flag.IntVar(&o.Threshold, "threshold", 8, "hash tree leaf threshold")
	flag.IntVar(&o.Fanout, "fanout", 0, "hash tree fanout (0 = adaptive)")
	flag.IntVar(&o.MaxK, "maxk", 0, "stop after itemsets of this size (0 = run to fixpoint)")
	flag.IntVar(&o.MaxCands, "max-candidates", 0, "max candidates held in one hash tree; larger iterations run batched with one DB pass per batch (0 = unlimited)")
	flag.StringVar(&o.Checkpoint, "checkpoint", "", "write a resumable snapshot here after every iteration (ccpd)")
	flag.BoolVar(&o.Resume, "resume", false, "continue from the -checkpoint snapshot instead of starting over")
	flag.Float64Var(&o.RuleConf, "rules", 0, "generate rules at this min confidence (0 = skip)")
	flag.IntVar(&o.TopN, "top", 10, "rules to print")
	flag.BoolVar(&o.Verbose, "v", false, "per-iteration details")
	flag.StringVar(&o.TracePath, "trace", "", "write a Chrome trace_event JSON timeline here (ccpd/pccd/vbit/auto)")
	flag.StringVar(&o.MetricsTo, "metrics", "", "write a Prometheus-text metrics snapshot here (ccpd/pccd/vbit/auto)")
	flag.StringVar(&o.MemBudget, "mem-budget", "", "out-of-core residency budget for segmented -db stores, e.g. 512M (default: double-buffered)")
	flag.BoolVar(&o.MMap, "mmap", false, "serve a segmented -db store from a memory mapping instead of read-at I/O")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "apriori:", err)
		var ue *usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(o cliOptions) error {
	if err := validate(o); err != nil {
		return err
	}
	var d *db.Database
	switch {
	case o.DBPath != "":
		segmented, err := seg.IsSegmented(o.DBPath)
		if err != nil {
			return err
		}
		if segmented {
			return runSegmented(o)
		}
		if o.MemBudget != "" || o.MMap {
			return usagef("-mem-budget/-mmap require a segmented store (write one with questgen -seg)")
		}
		if d, err = db.ReadFile(o.DBPath); err != nil {
			return err
		}
	case o.GenSpec != "":
		if o.MemBudget != "" || o.MMap {
			return usagef("-mem-budget/-mmap require a segmented -db store (write one with questgen -seg)")
		}
		p, err := parseGenSpec(o.GenSpec)
		if err != nil {
			return err
		}
		if d, err = gen.Generate(p); err != nil {
			return err
		}
		fmt.Printf("generated %s: %d transactions\n", p.Name(), d.Len())
	default:
		return fmt.Errorf("need -db or -gen")
	}

	if o.Algo == "auto" {
		// Density-based engine selection: pick the hash-tree or the vertical
		// bitmap engine from O(1) database statistics, then run as if the
		// chosen engine had been requested explicitly.
		st := vbit.Characterize(d)
		engine := vbit.AutoSelect(st)
		fmt.Printf("auto-selector: density=%.5f (avg len %.1f over %d items) -> %s\n",
			st.Density, st.AvgLen, st.NumItems, engine)
		o.Algo = engine.String()
	}

	parallel := o.Algo == "ccpd" || o.Algo == "pccd" || o.Algo == "vbit"
	if (o.TracePath != "" || o.MetricsTo != "") && !parallel {
		return fmt.Errorf("-trace/-metrics require -algo ccpd, pccd, vbit or auto (got %q)", o.Algo)
	}

	opts := apriori.Options{
		MinSupport: o.Support, Threshold: o.Threshold, Fanout: o.Fanout, ShortCircuit: o.SC,
		MaxK: o.MaxK, MaxCandidatesInMemory: o.MaxCands,
	}
	if o.Hash == "bitonic" {
		opts.Hash = hashtree.HashBitonic
	}

	var res *apriori.Result
	var stats *ccpd.Stats
	var vstats *vbit.Stats
	var rec *obs.Recorder
	var err error
	switch o.Algo {
	case "seq":
		res, err = apriori.Mine(d, opts)
	case "eclat":
		res, err = eclat.Mine(d, eclat.Options{MinSupport: o.Support, MaxK: o.MaxK, Procs: o.Procs})
	case "vbit":
		vo := vbit.Options{MinSupport: o.Support, MaxK: o.MaxK, Procs: o.Procs, ChunkStride: o.ChunkSize}
		if o.TracePath != "" || o.MetricsTo != "" {
			rec = obs.NewRecorder(o.Procs)
			vo.Obs = rec
		}
		res, vstats, err = vbit.Mine(d, vo)
	case "dhp":
		var st *baseline.DHPStats
		res, st, err = baseline.MineDHP(d, baseline.DHPOptions{Mining: opts})
		if err == nil {
			fmt.Printf("dhp filter: %d -> %d candidates\n", st.CandidatesBefore, st.CandidatesAfter)
		}
	case "partition":
		var st *baseline.PartitionStats
		res, st, err = baseline.MinePartition(d, baseline.PartitionOptions{Mining: opts, Chunks: o.Procs})
		if err == nil {
			fmt.Printf("partition: %d chunks, %d local candidates, %d scans\n",
				st.Chunks, st.LocalCandidates, st.Scans)
		}
	case "countdist":
		var st *baseline.CDStats
		res, st, err = baseline.MineCD(d, baseline.CDOptions{Mining: opts, Procs: o.Procs})
		if err == nil {
			fmt.Printf("count distribution: %d all-reduce rounds, %.1f KB exchanged\n",
				st.Rounds, float64(st.BytesExchanged)/1024)
		}
	case "ccpd", "pccd":
		po, err2 := ccpdOptions(o, opts)
		if err2 != nil {
			return err2
		}
		if o.TracePath != "" || o.MetricsTo != "" {
			rec = obs.NewRecorder(o.Procs)
			po.Obs = rec
		}
		switch {
		case o.Resume:
			res, stats, err = ccpd.Resume(context.Background(), o.Checkpoint, d, po)
		case o.Algo == "ccpd":
			res, stats, err = ccpd.Mine(d, po)
		default:
			res, stats, err = ccpd.MinePCCD(d, po)
		}
	default:
		return fmt.Errorf("unknown -algo %q", o.Algo)
	}
	if err != nil {
		return err
	}

	fmt.Printf("min support: %d transactions (%.3f%%)\n", res.MinCount, o.Support*100)
	fmt.Printf("frequent itemsets: %d\n", res.NumFrequent())
	for k := 1; k < len(res.ByK); k++ {
		if len(res.ByK[k]) > 0 {
			fmt.Printf("  F%-2d %6d\n", k, len(res.ByK[k]))
		}
	}
	if vstats != nil {
		fmt.Printf("total time: %v (class DFS %v)\n", vstats.Total, vstats.Count)
		if o.Verbose {
			fmt.Printf("  classes=%d columns=%d bitmap/%d tidlist modeltime=%d totalwork=%d\n",
				vstats.Classes, vstats.DenseItems, vstats.SparseItems,
				vstats.ModelTime(), vstats.TotalWork())
		}
	}
	if stats != nil {
		fmt.Printf("total time: %v (counting %v)\n", stats.Total, stats.TotalCount())
		if o.Verbose {
			for _, it := range stats.PerIter {
				fmt.Printf("  k=%-2d cands=%-7d freq=%-7d gen=%v build=%v count=%v reduce=%v\n",
					it.K, it.Candidates, it.Frequent, it.CandGen, it.TreeBuild, it.Count, it.Reduce)
				if it.ChunksClaimed != nil {
					var steals int64
					for _, s := range it.Steals {
						steals += s
					}
					fmt.Printf("       chunks=%v steals=%d idlework=%d countidle=%v\n",
						it.ChunksClaimed, steals, it.IdleWork(), it.CountIdle)
				}
			}
		}
	}
	if err := exportObs(rec, o.TracePath, o.MetricsTo); err != nil {
		return err
	}

	if o.RuleConf > 0 {
		rs := rules.Generate(res, rules.Options{MinConfidence: o.RuleConf, DBSize: d.Len()})
		fmt.Printf("rules at confidence >= %.2f: %d\n", o.RuleConf, len(rs))
		for i, r := range rs {
			if i >= o.TopN {
				break
			}
			fmt.Printf("  %v\n", r)
		}
	}
	return nil
}

// ccpdOptions maps the CLI's string knobs onto a ccpd.Options.
func ccpdOptions(o cliOptions, opts apriori.Options) (ccpd.Options, error) {
	po := ccpd.Options{Options: opts, Procs: o.Procs}
	switch o.Balance {
	case "interleaved":
		po.Balance = ccpd.BalanceInterleaved
	case "bitonic":
		po.Balance = ccpd.BalanceBitonic
	}
	switch o.Counter {
	case "locked":
		po.Counter = hashtree.CounterLocked
	case "atomic":
		po.Counter = hashtree.CounterAtomic
	case "private":
		po.Counter = hashtree.CounterPrivate
	}
	switch o.DBPart {
	case "block":
		po.DBPart = ccpd.PartitionBlock
	case "workload":
		po.DBPart = ccpd.PartitionWorkload
	case "dynamic":
		po.DBPart = ccpd.PartitionDynamic
	case "stealing":
		po.DBPart = ccpd.PartitionStealing
	default:
		return po, fmt.Errorf("unknown -dbpart %q", o.DBPart)
	}
	po.ChunkSize = o.ChunkSize
	po.Checkpoint = o.Checkpoint
	return po, nil
}

// runSegmented mines a segmented (out-of-core) store: the database never
// materializes whole; segments stream through a double-buffered pipeline
// bounded by -mem-budget. Only the ccpd and vbit engines (and auto between
// them) have out-of-core counting paths.
func runSegmented(o cliOptions) error {
	var budget int64
	if o.MemBudget != "" {
		var err error
		if budget, err = parseByteSize(o.MemBudget); err != nil {
			return err
		}
	}
	var (
		r   *seg.Reader
		err error
	)
	if o.MMap {
		r, err = seg.OpenMapped(o.DBPath)
	} else {
		r, err = seg.Open(o.DBPath)
	}
	if err != nil {
		return err
	}
	defer r.Close()
	fmt.Printf("segmented store: %d transactions, %d segments, max segment %.1f MB\n",
		r.NumTx(), r.NumSegments(), float64(r.MaxSegmentBytes())/(1<<20))

	algo := o.Algo
	if algo == "auto" {
		// Characterize the first segment: density statistics are per-
		// transaction averages, so any segment is a fair sample.
		sd, err := r.LoadSegment(0, nil)
		if err != nil {
			return err
		}
		st := vbit.Characterize(sd)
		engine := vbit.AutoSelect(st)
		fmt.Printf("auto-selector (segment 0): density=%.5f (avg len %.1f over %d items) -> %s\n",
			st.Density, st.AvgLen, st.NumItems, engine)
		algo = engine.String()
	}

	opts := apriori.Options{
		MinSupport: o.Support, Threshold: o.Threshold, Fanout: o.Fanout, ShortCircuit: o.SC,
		MaxK: o.MaxK, MaxCandidatesInMemory: o.MaxCands,
	}
	if o.Hash == "bitonic" {
		opts.Hash = hashtree.HashBitonic
	}
	var rec *obs.Recorder
	if o.TracePath != "" || o.MetricsTo != "" {
		rec = obs.NewRecorder(o.Procs)
	}

	var res *apriori.Result
	var pipe *seg.PipelineStats
	switch algo {
	case "ccpd":
		po, err := ccpdOptions(o, opts)
		if err != nil {
			return err
		}
		po.Obs = rec
		var stats *ccpd.Stats
		res, stats, err = ccpd.MineSegmented(r, ccpd.SegmentedOptions{Options: po, MemBudget: budget})
		if err != nil {
			return err
		}
		pipe = stats.OutOfCore
		fmt.Printf("total time: %v (counting %v)\n", stats.Total, stats.TotalCount())
		if o.Verbose {
			for _, it := range stats.PerIter {
				fmt.Printf("  k=%-2d cands=%-7d freq=%-7d count=%v\n", it.K, it.Candidates, it.Frequent, it.Count)
			}
		}
	case "vbit":
		var stats *vbit.SegmentedStats
		res, stats, err = vbit.MineSegmented(r, vbit.SegmentedOptions{
			Options: vbit.Options{
				MinSupport: o.Support, MaxK: o.MaxK, Procs: o.Procs,
				ChunkStride: o.ChunkSize, Obs: rec,
			},
			MemBudget: budget,
		})
		if err != nil {
			return err
		}
		pipe = &stats.Pipeline
		fmt.Printf("total time: %v (%d levels)\n", stats.Total, stats.Levels)
	default:
		return usagef("segmented stores mine with -algo ccpd, vbit or auto (got %q)", o.Algo)
	}

	if pipe != nil {
		mode := "sync"
		if pipe.Overlapped {
			mode = "double-buffered"
		}
		fmt.Printf("out-of-core: %d segment loads over %d passes, %d resident (%s), stall %.1f%%\n",
			pipe.Segments, pipe.Passes, pipe.Residents, mode, 100*pipe.StallFraction())
	}
	fmt.Printf("min support: %d transactions (%.3f%%)\n", res.MinCount, o.Support*100)
	fmt.Printf("frequent itemsets: %d\n", res.NumFrequent())
	for k := 1; k < len(res.ByK); k++ {
		if len(res.ByK[k]) > 0 {
			fmt.Printf("  F%-2d %6d\n", k, len(res.ByK[k]))
		}
	}
	if err := exportObs(rec, o.TracePath, o.MetricsTo); err != nil {
		return err
	}
	if o.RuleConf > 0 {
		rs := rules.Generate(res, rules.Options{MinConfidence: o.RuleConf, DBSize: int(r.NumTx())}) //armlint:narrowok int is 64-bit on every supported target, so the int64 transaction count converts losslessly
		fmt.Printf("rules at confidence >= %.2f: %d\n", o.RuleConf, len(rs))
		for i, rl := range rs {
			if i >= o.TopN {
				break
			}
			fmt.Printf("  %v\n", rl)
		}
	}
	return nil
}

// exportObs writes the recorded trace and/or metrics snapshot to the
// requested paths. A nil recorder (no -trace/-metrics) is a no-op.
func exportObs(rec *obs.Recorder, tracePath, metricsPath string) error {
	if rec == nil {
		return nil
	}
	write := func(path string, emit func(w io.Writer) error, what string) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", what, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%s written to %s\n", what, path)
		return nil
	}
	if err := write(tracePath, rec.WriteTrace, "trace"); err != nil {
		return err
	}
	return write(metricsPath, rec.WriteMetrics, "metrics")
}
