// Command benchjson runs the counting-kernel microbenchmarks through
// testing.Benchmark and writes a machine-readable snapshot (BENCH_counting.json
// by default) with ns/op and allocs/op per configuration. CI runs it on every
// push so kernel-performance and allocation regressions show up as an
// artifact diff rather than a buried log line.
//
// With -scaling it instead runs the full miner across processor counts and
// counting-partition modes (static block/workload vs dynamic cursor/stealing)
// on a uniform and a skew-planted database and writes BENCH_scaling.json,
// including a deterministic verdict: dynamic must cut the modelled idle work
// on the skewed database and stay within 5% modelled time on the uniform one.
//
// With -against FILE the fresh kernel measurements are compared to a
// committed snapshot and the process exits nonzero on a >10% ns/op or
// allocs/op regression.
//
// Usage:
//
//	benchjson [-o BENCH_counting.json] [-d 2000]
//	benchjson -against BENCH_counting.json
//	benchjson -scaling [-o BENCH_scaling.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"repro/internal/apriori"
	"repro/internal/ccpd"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/hashtree"
	"repro/internal/itemset"
)

// result is one benchmark configuration's measurement.
type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

type report struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	// TxPerOp is how many transactions one benchmark op counts; ns_per_op /
	// tx_per_op gives per-transaction cost.
	TxPerOp int      `json:"tx_per_op"`
	K       int      `json:"k"`
	Results []result `json:"results"`
}

func buildTree(d *db.Database, k int) (*hashtree.Tree, error) {
	res, err := apriori.Mine(d, apriori.Options{AbsSupport: 5, MaxK: k})
	if err != nil {
		return nil, err
	}
	if k >= len(res.ByK) {
		return nil, fmt.Errorf("no frequent %d-itemsets", k-1)
	}
	var prev []itemset.Itemset
	for _, f := range res.ByK[k-1] {
		prev = append(prev, f.Items)
	}
	cands, _, _ := apriori.GenerateCandidates(prev, false)
	if len(cands) == 0 {
		return nil, fmt.Errorf("no %d-candidates", k)
	}
	return hashtree.Build(hashtree.Config{
		K: k, Threshold: 8, Hash: hashtree.HashBitonic, NumItems: d.NumItems(),
	}, cands)
}

func main() {
	out := flag.String("o", "BENCH_counting.json", "output file")
	dsize := flag.Int("d", 2000, "transactions in the benchmark database")
	scaling := flag.Bool("scaling", false, "run the procs-scaling scheduler benchmark instead of the counting kernel")
	against := flag.String("against", "", "committed kernel snapshot to gate against (>10% regression fails)")
	nsTol := flag.Float64("nstol", 10, "ns/op regression tolerance percent for -against, after host-scale normalization (0 disables the timing gate; allocs are always gated at 10%)")
	flag.Parse()

	if *scaling {
		if *out == "BENCH_counting.json" {
			*out = "BENCH_scaling.json"
		}
		if err := runScaling(*out, *dsize); err != nil {
			fatal(err)
		}
		return
	}

	d, err := gen.Generate(gen.Params{T: 10, I: 4, D: *dsize, Seed: 1})
	if err != nil {
		fatal(err)
	}
	const k = 3
	tree, err := buildTree(d, k)
	if err != nil {
		fatal(err)
	}

	rep := report{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		TxPerOp:   d.Len(),
		K:         k,
	}
	for _, mode := range []hashtree.CounterMode{
		hashtree.CounterLocked, hashtree.CounterAtomic, hashtree.CounterPrivate,
	} {
		for _, batch := range []bool{false, true} {
			name := "CountKernel/" + mode.String()
			if batch {
				name += "-batched"
			}
			counters := hashtree.NewCounters(mode, tree.NumCandidates(), 1)
			ctx := tree.NewCountCtx(counters, hashtree.CountOpts{
				ShortCircuit: true, BatchUpdates: batch,
			})
			// Best of three repetitions: the minimum is far less noisy
			// than one sample on a shared host, which is what makes the
			// -against regression gate usable in CI.
			var best result
			for try := 0; try < 3; try++ {
				br := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						for t := 0; t < d.Len(); t++ {
							ctx.CountTransaction(d.Items(t))
						}
						ctx.Flush()
					}
				})
				r := result{
					Name:        name,
					NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
					AllocsPerOp: br.AllocsPerOp(),
					BytesPerOp:  br.AllocedBytesPerOp(),
					Iterations:  br.N,
				}
				if try == 0 || r.NsPerOp < best.NsPerOp {
					best = r
				}
			}
			rep.Results = append(rep.Results, best)
			fmt.Printf("%-32s %12.0f ns/op %6d allocs/op\n",
				name, best.NsPerOp, best.AllocsPerOp)
		}
	}

	if err := writeJSON(*out, rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *against != "" {
		if err := gateAgainst(rep, *against, *nsTol); err != nil {
			fatal(err)
		}
		fmt.Printf("no kernel regression vs %s\n", *against)
	}
}

// gateAgainst fails when any kernel configuration regressed more than 10%
// against the committed snapshot. Allocations are compared absolutely (they
// are deterministic and hardware independent). ns/op is compared after
// normalizing by the median new/old ratio across all configurations: the
// median captures the speed difference between the baseline host and this
// one (plus any uniform load), so the gate trips only when one configuration
// slows down relative to the others — which is what a kernel regression
// looks like, and what survives CI-runner hardware churn. Configurations
// that disappeared fail, so a dropped benchmark cannot hide a regression.
// nsTol is the relative ns/op tolerance in percent (0 disables the timing
// gate for hosts too contended to time anything).
func gateAgainst(cur report, path string, nsTol float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old report
	if err := json.Unmarshal(buf, &old); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	curByName := map[string]result{}
	for _, r := range cur.Results {
		curByName[r.Name] = r
	}
	var ratios []float64
	for _, o := range old.Results {
		if n, ok := curByName[o.Name]; ok && o.NsPerOp > 0 {
			ratios = append(ratios, n.NsPerOp/o.NsPerOp)
		}
	}
	scale := 1.0
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		scale = ratios[len(ratios)/2]
	}
	var bad []string
	for _, o := range old.Results {
		n, ok := curByName[o.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: benchmark disappeared", o.Name))
			continue
		}
		if nsTol > 0 && o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*scale*(1+nsTol/100) {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op vs %.0f baseline ×%.2f host scale (+%.1f%% relative)",
				o.Name, n.NsPerOp, o.NsPerOp, scale, 100*(n.NsPerOp/(o.NsPerOp*scale)-1)))
		}
		if float64(n.AllocsPerOp) > float64(o.AllocsPerOp)*1.10+0.5 {
			bad = append(bad, fmt.Sprintf("%s: %d allocs/op vs %d",
				o.Name, n.AllocsPerOp, o.AllocsPerOp))
		}
	}
	if len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, "regression:", b)
		}
		return fmt.Errorf("%d kernel regression(s) vs %s", len(bad), path)
	}
	return nil
}

// scalingRow is one (dataset, procs, partition) measurement of the full
// miner. Wall-clock counting time is recorded for hosts with real cores; the
// modelled figures are deterministic and are what the verdict gates on.
type scalingRow struct {
	Dataset      string `json:"dataset"`
	Procs        int    `json:"procs"`
	Partition    string `json:"partition"`
	CountWallNs  int64  `json:"count_wall_ns"`
	ModelTime    int64  `json:"model_time"`
	MaxCountWork int64  `json:"max_count_work"`
	IdleWork     int64  `json:"idle_work"`
	Steals       int64  `json:"steals"`
}

type scalingVerdict struct {
	// Skewed database, highest processor count: dynamic idle and modelled
	// time must beat the static block partition.
	SkewedIdleBlock   int64 `json:"skewed_idle_block"`
	SkewedIdleDynamic int64 `json:"skewed_idle_dynamic"`
	SkewedModelBlock  int64 `json:"skewed_model_block"`
	SkewedModelDyn    int64 `json:"skewed_model_dynamic"`
	// Uniform database: dynamic modelled time must stay within 5% of block.
	UniformRegressPct float64 `json:"uniform_regress_pct"`
	Pass              bool    `json:"pass"`
}

type scalingReport struct {
	GoVersion string         `json:"go_version"`
	GOARCH    string         `json:"goarch"`
	NumCPU    int            `json:"num_cpu"`
	ChunkSize int            `json:"chunk_size"`
	Rows      []scalingRow   `json:"rows"`
	Verdict   scalingVerdict `json:"verdict"`
}

// runScaling measures miner scaling across processor counts and partition
// modes on a uniform and a skew-planted database.
func runScaling(out string, dsize int) error {
	const chunk = 16
	uniform := gen.Params{T: 10, I: 4, D: dsize, Seed: 1}
	skewed := uniform
	skewed.SkewFrac, skewed.SkewMult = 0.05, 8

	rep := scalingReport{
		GoVersion: runtime.Version(), GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(), ChunkSize: chunk,
	}
	parts := []ccpd.DBPartition{
		ccpd.PartitionBlock, ccpd.PartitionWorkload,
		ccpd.PartitionDynamic, ccpd.PartitionStealing,
	}
	procsList := []int{1, 2, 4, 8}
	idle := map[string]int64{}  // dataset/procs/part → idle work
	model := map[string]int64{} // dataset/procs/part → model time
	for _, spec := range []struct {
		label string
		p     gen.Params
	}{{"uniform", uniform}, {"skewed", skewed}} {
		d, err := gen.Generate(spec.p)
		if err != nil {
			return err
		}
		for _, procs := range procsList {
			for _, part := range parts {
				opts := ccpd.Options{
					Options: apriori.Options{
						AbsSupport: 10, ShortCircuit: true,
						Hash: hashtree.HashBitonic,
						// The heavy tail makes deep levels dense.
						MaxK: 4,
					},
					Procs: procs, Counter: hashtree.CounterPrivate,
					Balance: ccpd.BalanceBitonic,
					DBPart:  part, ChunkSize: chunk,
				}
				_, st, err := ccpd.Mine(d, opts)
				if err != nil {
					return err
				}
				var maxCount int64
				for i := range st.PerIter {
					maxCount += maxWork(st.PerIter[i].CountWork)
				}
				key := fmt.Sprintf("%s/%d/%s", spec.label, procs, part)
				idle[key] = st.CountIdleWork()
				model[key] = st.ModelTime()
				rep.Rows = append(rep.Rows, scalingRow{
					Dataset: spec.label, Procs: procs, Partition: part.String(),
					CountWallNs: st.TotalCount().Nanoseconds(),
					ModelTime:   st.ModelTime(), MaxCountWork: maxCount,
					IdleWork: st.CountIdleWork(), Steals: st.TotalSteals(),
				})
				fmt.Printf("%-8s procs=%d %-9s model=%-10d idle=%-10d steals=%d\n",
					spec.label, procs, part, st.ModelTime(), st.CountIdleWork(), st.TotalSteals())
			}
		}
	}

	top := procsList[len(procsList)-1]
	v := &rep.Verdict
	v.SkewedIdleBlock = idle[fmt.Sprintf("skewed/%d/%s", top, ccpd.PartitionBlock)]
	v.SkewedIdleDynamic = idle[fmt.Sprintf("skewed/%d/%s", top, ccpd.PartitionDynamic)]
	v.SkewedModelBlock = model[fmt.Sprintf("skewed/%d/%s", top, ccpd.PartitionBlock)]
	v.SkewedModelDyn = model[fmt.Sprintf("skewed/%d/%s", top, ccpd.PartitionDynamic)]
	ub := model[fmt.Sprintf("uniform/%d/%s", top, ccpd.PartitionBlock)]
	ud := model[fmt.Sprintf("uniform/%d/%s", top, ccpd.PartitionDynamic)]
	if ub > 0 {
		v.UniformRegressPct = 100 * (float64(ud)/float64(ub) - 1)
	}
	v.Pass = v.SkewedIdleDynamic < v.SkewedIdleBlock &&
		v.SkewedModelDyn < v.SkewedModelBlock &&
		v.UniformRegressPct < 5.0
	if err := writeJSON(out, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	if !v.Pass {
		return fmt.Errorf("scaling verdict failed: skewed idle %d vs %d, model %d vs %d, uniform regress %.2f%%",
			v.SkewedIdleDynamic, v.SkewedIdleBlock, v.SkewedModelDyn, v.SkewedModelBlock, v.UniformRegressPct)
	}
	fmt.Println("scaling verdict: pass")
	return nil
}

func maxWork(v []int64) int64 {
	var m int64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func writeJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
