// Command benchjson runs the counting-kernel microbenchmarks through
// testing.Benchmark and writes a machine-readable snapshot (BENCH_counting.json
// by default) with ns/op and allocs/op per configuration. CI runs it on every
// push so kernel-performance and allocation regressions show up as an
// artifact diff rather than a buried log line.
//
// With -scaling it instead runs the full miner across processor counts and
// counting-partition modes (static block/workload vs dynamic cursor/stealing)
// on a uniform and a skew-planted database and writes BENCH_scaling.json,
// including a deterministic verdict: dynamic must cut the modelled idle work
// on the skewed database and stay within 5% modelled time on the uniform one.
//
// Besides the hash-tree counter-mode sweep, the default run compares the two
// counting engines head to head: EngineKernel/{dense,sparse}/{hashtree,vbit}
// rows count the same k-candidate list through the hash-tree kernel and the
// vertical popcount kernel on a dense and a sparse dataset, and the engine
// verdict (nonzero exit on failure) requires vbit to beat the hash tree on
// the dense one. -engine restricts which engines run.
//
// With -planner it additionally records planner-decision rows: the
// cost-based engine.Planner's choice (with its full cost estimates) on the
// dense and sparse reference workloads next to both engines' measured
// full-run walls, and a verdict (nonzero exit on failure) that the planner
// picked the measured-faster engine on each.
//
// With -against FILE the fresh kernel measurements are compared to a
// committed snapshot and the process exits nonzero on a >10% ns/op or
// allocs/op regression.
//
// Usage:
//
//	benchjson [-o BENCH_counting.json] [-d 2000] [-engine all|hashtree|vbit] [-planner]
//	benchjson -against BENCH_counting.json
//	benchjson -scaling [-o BENCH_scaling.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/apriori"
	"repro/internal/ccpd"
	"repro/internal/db"
	"repro/internal/db/seg"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/vbit"
)

// result is one benchmark configuration's measurement.
type result struct {
	Name        string  `json:"name"`
	Engine      string  `json:"engine,omitempty"` // hashtree | vbit
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// engineVerdict is the dense/sparse engine comparison outcome: the vertical
// bitmap kernel must beat the hash-tree kernel on the dense dataset (the
// claim the vbit engine exists to deliver); the sparse figures are recorded
// so the crossover stays visible but are not gated — that side belongs to
// the hash tree by design.
type engineVerdict struct {
	DenseHashtreeNs  float64 `json:"dense_hashtree_ns"`
	DenseVBitNs      float64 `json:"dense_vbit_ns"`
	SparseHashtreeNs float64 `json:"sparse_hashtree_ns"`
	SparseVBitNs     float64 `json:"sparse_vbit_ns"`
	Pass             bool    `json:"pass"`
}

// oocRow is one out-of-core pipeline measurement: the full segmented miner
// on the same store, with a synthetic per-segment load delay, under the sync
// (single-buffer) and the double-buffered prefetch pipeline.
type oocRow struct {
	Mode          string  `json:"mode"` // sync | overlapped
	WallNs        int64   `json:"wall_ns"`
	LoadNs        int64   `json:"load_ns"`
	StallNs       int64   `json:"stall_ns"`
	CountNs       int64   `json:"count_ns"`
	StallFraction float64 `json:"stall_fraction"`
	Segments      int     `json:"segments"`
	Passes        int     `json:"passes"`
}

// oocVerdict gates the prefetch-overlap claim: with I/O latency comparable
// to counting time, the double-buffered pipeline must finish faster than the
// sync one and spend a smaller fraction of its time stalled on loads.
type oocVerdict struct {
	SyncWallNs       int64   `json:"sync_wall_ns"`
	OverlapWallNs    int64   `json:"overlap_wall_ns"`
	SyncStallFrac    float64 `json:"sync_stall_fraction"`
	OverlapStallFrac float64 `json:"overlap_stall_fraction"`
	Pass             bool    `json:"pass"`
}

// oocSection is the out-of-core portion of the counting report (-outofcore).
type oocSection struct {
	Segments    int        `json:"segments"`
	LoadDelayNs int64      `json:"load_delay_ns"`
	Rows        []oocRow   `json:"rows"`
	Verdict     oocVerdict `json:"verdict"`
}

// plannerEstimate mirrors one engine.Estimate: the planner's modelled cost
// for one engine on one workload, recorded so a decision row is auditable.
type plannerEstimate struct {
	Engine     string `json:"engine"`
	Cost       int64  `json:"cost"`
	ArenaBytes int64  `json:"arena_bytes"`
	Feasible   bool   `json:"feasible"`
	Note       string `json:"note"`
}

// plannerRow is one planner-decision measurement: the cost-based plan for a
// reference workload next to the measured full-run wall (best of three,
// through the Miner interface) of both candidate engines.
type plannerRow struct {
	Workload       string            `json:"workload"`
	Density        float64           `json:"density"`
	TailMass       float64           `json:"tail_mass"`
	PlannedEngine  string            `json:"planned_engine"`
	PlannedDBPart  string            `json:"planned_dbpart"`
	Reason         string            `json:"reason"`
	Estimates      []plannerEstimate `json:"estimates"`
	CcpdWallNs     int64             `json:"ccpd_wall_ns"`
	VbitWallNs     int64             `json:"vbit_wall_ns"`
	MeasuredWinner string            `json:"measured_winner"`
	Agree          bool              `json:"agree"`
}

// plannerVerdict gates the planner against reality: on the dense and the
// sparse reference workload the engine the planner chose must be the engine
// that actually measured faster end to end.
type plannerVerdict struct {
	DensePlanned   string `json:"dense_planned"`
	DenseMeasured  string `json:"dense_measured"`
	SparsePlanned  string `json:"sparse_planned"`
	SparseMeasured string `json:"sparse_measured"`
	Pass           bool   `json:"pass"`
}

// plannerSection is the planner portion of the counting report (-planner).
type plannerSection struct {
	Rows    []plannerRow   `json:"rows"`
	Verdict plannerVerdict `json:"verdict"`
}

type report struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	// TxPerOp is how many transactions one benchmark op counts; ns_per_op /
	// tx_per_op gives per-transaction cost.
	TxPerOp int      `json:"tx_per_op"`
	K       int      `json:"k"`
	Results []result `json:"results"`
	// EngineVerdict is present when both engines ran the comparison rows
	// (-engine all, the default).
	EngineVerdict *engineVerdict `json:"engine_verdict,omitempty"`
	// OutOfCore is present when -outofcore ran the prefetch-overlap rows.
	OutOfCore *oocSection `json:"out_of_core,omitempty"`
	// Planner is present when -planner ran the decision rows.
	Planner *plannerSection `json:"planner,omitempty"`
}

// kCandidates mines the (k-1)-frequent sets and joins them into the
// k-candidate list both counting engines are benchmarked on.
func kCandidates(d *db.Database, k int) ([]itemset.Itemset, error) {
	res, err := apriori.Mine(d, apriori.Options{AbsSupport: 5, MaxK: k})
	if err != nil {
		return nil, err
	}
	if k >= len(res.ByK) {
		return nil, fmt.Errorf("no frequent %d-itemsets", k-1)
	}
	var prev []itemset.Itemset
	for _, f := range res.ByK[k-1] {
		prev = append(prev, f.Items)
	}
	cands, _, _ := apriori.GenerateCandidates(prev, false)
	if len(cands) == 0 {
		return nil, fmt.Errorf("no %d-candidates", k)
	}
	return cands, nil
}

func buildTree(d *db.Database, k int, cands []itemset.Itemset) (*hashtree.Tree, error) {
	return hashtree.Build(hashtree.Config{
		K: k, Threshold: 8, Hash: hashtree.HashBitonic, NumItems: d.NumItems(),
	}, cands)
}

// bestOf3 runs fn through testing.Benchmark three times and keeps the
// fastest repetition: the minimum is far less noisy than one sample on a
// shared host, which is what makes the -against regression gate usable in
// CI.
func bestOf3(name, engine string, fn func(b *testing.B)) result {
	var best result
	for try := 0; try < 3; try++ {
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		r := result{
			Name:        name,
			Engine:      engine,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			Iterations:  br.N,
		}
		if try == 0 || r.NsPerOp < best.NsPerOp {
			best = r
		}
	}
	return best
}

func main() {
	out := flag.String("o", "BENCH_counting.json", "output file")
	dsize := flag.Int("d", 2000, "transactions in the benchmark database")
	scaling := flag.Bool("scaling", false, "run the procs-scaling scheduler benchmark instead of the counting kernel")
	against := flag.String("against", "", "committed kernel snapshot to gate against (>10% regression fails)")
	outofcore := flag.Bool("outofcore", false, "also run the out-of-core prefetch-overlap rows (sync vs double-buffered segmented mining)")
	nsTol := flag.Float64("nstol", 10, "ns/op regression tolerance percent for -against, after host-scale normalization (0 disables the timing gate; allocs are always gated at 10%)")
	engineSel := flag.String("engine", "all", "counting engines to benchmark: all | hashtree | vbit (the committed snapshot holds all, so -against needs all)")
	planner := flag.Bool("planner", false, "also run the planner-decision rows (cost-based plan vs measured full-run walls on the reference workloads)")
	flag.Parse()
	if *engineSel != "all" && *engineSel != "hashtree" && *engineSel != "vbit" {
		fatal(fmt.Errorf("unknown -engine %q (want all, hashtree or vbit)", *engineSel))
	}

	if *scaling {
		if *out == "BENCH_counting.json" {
			*out = "BENCH_scaling.json"
		}
		if err := runScaling(*out, *dsize); err != nil {
			fatal(err)
		}
		return
	}

	d, err := gen.Generate(gen.Params{T: 10, I: 4, D: *dsize, Seed: 1})
	if err != nil {
		fatal(err)
	}
	const k = 3

	rep := report{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		TxPerOp:   d.Len(),
		K:         k,
	}
	if *engineSel != "vbit" {
		cands, err := kCandidates(d, k)
		if err != nil {
			fatal(err)
		}
		tree, err := buildTree(d, k, cands)
		if err != nil {
			fatal(err)
		}
		for _, mode := range []hashtree.CounterMode{
			hashtree.CounterLocked, hashtree.CounterAtomic, hashtree.CounterPrivate,
		} {
			for _, batch := range []bool{false, true} {
				name := "CountKernel/" + mode.String()
				if batch {
					name += "-batched"
				}
				counters := hashtree.NewCounters(mode, tree.NumCandidates(), 1)
				ctx := tree.NewCountCtx(counters, hashtree.CountOpts{
					ShortCircuit: true, BatchUpdates: batch,
				})
				best := bestOf3(name, "hashtree", func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						for t := 0; t < d.Len(); t++ {
							ctx.CountTransaction(d.Items(t))
						}
						ctx.Flush()
					}
				})
				rep.Results = append(rep.Results, best)
				fmt.Printf("%-32s %12.0f ns/op %6d allocs/op\n",
					name, best.NsPerOp, best.AllocsPerOp)
			}
		}
	}

	if err := runEngineRows(&rep, *dsize, k, *engineSel); err != nil {
		fatal(err)
	}
	if *outofcore {
		if err := runOutOfCore(&rep, *dsize); err != nil {
			fatal(err)
		}
	}
	if *planner {
		if err := runPlannerRows(&rep, *dsize); err != nil {
			fatal(err)
		}
	}

	if err := writeJSON(*out, rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *against != "" {
		if err := gateAgainst(rep, *against, *nsTol); err != nil {
			fatal(err)
		}
		fmt.Printf("no kernel regression vs %s\n", *against)
	}
	if v := rep.EngineVerdict; v != nil && !v.Pass {
		fatal(fmt.Errorf("engine verdict failed: vbit %.0f ns/op vs hashtree %.0f ns/op on the dense dataset — the vertical engine must win there",
			v.DenseVBitNs, v.DenseHashtreeNs))
	}
	if v := rep.OutOfCore; v != nil && !v.Verdict.Pass {
		fatal(fmt.Errorf("out-of-core verdict failed: overlapped %.1fms (stall %.0f%%) vs sync %.1fms (stall %.0f%%) — double-buffering must win",
			float64(v.Verdict.OverlapWallNs)/1e6, 100*v.Verdict.OverlapStallFrac,
			float64(v.Verdict.SyncWallNs)/1e6, 100*v.Verdict.SyncStallFrac))
	}
	if p := rep.Planner; p != nil && !p.Verdict.Pass {
		fatal(fmt.Errorf("planner verdict failed: dense planned %s/measured %s, sparse planned %s/measured %s — the planner must pick the measured-faster engine",
			p.Verdict.DensePlanned, p.Verdict.DenseMeasured,
			p.Verdict.SparsePlanned, p.Verdict.SparseMeasured))
	}
}

// runPlannerRows runs the cost-based planner on the same dense and sparse
// reference workloads the engine-kernel rows use, then measures both
// candidate engines end to end (full mining run, best of three, dispatched
// through the unified Miner interface) and records whether the planner's
// choice was the measured-faster engine. Both reference densities sit on the
// vbit side of the crossover, so a planner that drifts into picking the
// horizontal engine there — a mis-tuned crossover, a broken feasibility
// check — fails the verdict.
func runPlannerRows(rep *report, dsize int) error {
	workloads := []struct {
		label string
		p     gen.Params
	}{
		// Same shapes as runEngineRows: density 0.2 and 0.01.
		{"dense", gen.Params{N: 60, L: 30, T: 12, I: 4, D: dsize, Seed: 1}},
		{"sparse", gen.Params{T: 10, I: 4, D: dsize, Seed: 1}},
	}
	sec := &plannerSection{}
	for _, wl := range workloads {
		d, err := gen.Generate(wl.p)
		if err != nil {
			return err
		}
		info := engine.Characterize(d)
		plan := engine.Planner{Procs: 4}.Plan(info)
		row := plannerRow{
			Workload: wl.label, Density: info.Density, TailMass: info.TailMass,
			PlannedEngine: plan.Engine, PlannedDBPart: plan.DBPart.String(),
			Reason: plan.Reason,
		}
		for _, e := range plan.Estimates {
			row.Estimates = append(row.Estimates, plannerEstimate{
				Engine: e.Engine, Cost: e.Cost, ArenaBytes: e.ArenaBytes,
				Feasible: e.Feasible, Note: e.Note,
			})
		}

		// MaxK bounds the dense run: the comparison needs both engines on
		// identical work, not an exhaustive lattice walk.
		spec := engine.Spec{
			Mining: apriori.Options{AbsSupport: 10, ShortCircuit: true, MaxK: 3},
			Procs:  4,
		}
		walls := map[string]int64{}
		for try := 0; try < 3; try++ {
			for _, name := range []string{"ccpd", "vbit"} {
				m, ok := engine.Lookup(name)
				if !ok {
					return fmt.Errorf("engine %q not registered", name)
				}
				t0 := time.Now()
				if _, _, err := m.Mine(d, spec); err != nil {
					return fmt.Errorf("%s on %s: %w", name, wl.label, err)
				}
				if w := time.Since(t0).Nanoseconds(); try == 0 || w < walls[name] {
					walls[name] = w
				}
			}
		}
		row.CcpdWallNs, row.VbitWallNs = walls["ccpd"], walls["vbit"]
		row.MeasuredWinner = "ccpd"
		if row.VbitWallNs < row.CcpdWallNs {
			row.MeasuredWinner = "vbit"
		}
		row.Agree = row.PlannedEngine == row.MeasuredWinner
		sec.Rows = append(sec.Rows, row)
		fmt.Printf("Planner/%-8s density %.4f planned %-5s measured %-5s (ccpd %.1fms, vbit %.1fms)\n",
			wl.label, row.Density, row.PlannedEngine, row.MeasuredWinner,
			float64(row.CcpdWallNs)/1e6, float64(row.VbitWallNs)/1e6)
	}
	v := &sec.Verdict
	v.DensePlanned, v.DenseMeasured = sec.Rows[0].PlannedEngine, sec.Rows[0].MeasuredWinner
	v.SparsePlanned, v.SparseMeasured = sec.Rows[1].PlannedEngine, sec.Rows[1].MeasuredWinner
	v.Pass = sec.Rows[0].Agree && sec.Rows[1].Agree
	rep.Planner = sec
	status := "pass"
	if !v.Pass {
		status = "FAIL"
	}
	fmt.Printf("planner verdict: %s\n", status)
	return nil
}

// runOutOfCore measures the segmented miner under the sync and the
// double-buffered pipeline on the same store. The synthetic per-segment load
// delay is calibrated to the measured counting time per segment visit, so
// I/O and compute are comparable — the regime where prefetch overlap pays;
// with free loads both modes degenerate to pure counting, and with dominant
// loads both degenerate to pure I/O.
func runOutOfCore(rep *report, dsize int) error {
	dir, err := os.MkdirTemp("", "benchooc")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	// 4× the kernel-row database split into 4 segments: per-segment counting
	// must dwarf timer/scheduler wake latency (~1ms on a loaded single-core
	// host) or the overlap win drowns in it.
	dooc := 4 * dsize
	d, err := gen.Generate(gen.Params{T: 10, I: 4, D: dooc, Seed: 1})
	if err != nil {
		return err
	}
	path := dir + "/bench.arseg"
	segTx := (dooc + 3) / 4
	if err := seg.WriteDatabase(path, d, seg.WriterOptions{SegTx: segTx}); err != nil {
		return err
	}
	r, err := seg.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()

	opts := ccpd.Options{
		Options: apriori.Options{
			AbsSupport: 10, ShortCircuit: true, Hash: hashtree.HashBitonic,
		},
		Procs: 4, Counter: hashtree.CounterPrivate,
		Balance: ccpd.BalanceBitonic, DBPart: ccpd.PartitionBlock,
	}
	run := func(budget int64, delay time.Duration) (int64, *seg.PipelineStats, error) {
		var wall int64
		var pipe *seg.PipelineStats
		for try := 0; try < 3; try++ { // min of 3, like the kernel rows
			t0 := time.Now()
			_, st, err := ccpd.MineSegmented(r, ccpd.SegmentedOptions{
				Options: opts, MemBudget: budget, LoadDelay: delay,
			})
			w := time.Since(t0).Nanoseconds()
			if err != nil {
				return 0, nil, err
			}
			if try == 0 || w < wall {
				wall, pipe = w, st.OutOfCore
			}
		}
		return wall, pipe, nil
	}

	// Calibrate: a delay-free sync pass measures pure counting per segment
	// visit; that becomes the injected load latency (clamped to sane bounds).
	_, cal, err := run(1, 0)
	if err != nil {
		return err
	}
	delay := time.Duration(cal.CountNS / int64(cal.Segments))
	if delay < 500*time.Microsecond {
		delay = 500 * time.Microsecond
	}
	if delay > 10*time.Millisecond {
		delay = 10 * time.Millisecond
	}

	sec := &oocSection{Segments: r.NumSegments(), LoadDelayNs: delay.Nanoseconds()}
	for _, m := range []struct {
		mode   string
		budget int64
	}{{"sync", 1}, {"overlapped", 0}} {
		wall, pipe, err := run(m.budget, delay)
		if err != nil {
			return err
		}
		sec.Rows = append(sec.Rows, oocRow{
			Mode: m.mode, WallNs: wall,
			LoadNs: pipe.LoadNS, StallNs: pipe.StallNS, CountNs: pipe.CountNS,
			StallFraction: pipe.StallFraction(),
			Segments:      pipe.Segments, Passes: pipe.Passes,
		})
		fmt.Printf("OutOfCore/%-12s %10.1f ms wall, stall %5.1f%% (%d segment loads, %d passes)\n",
			m.mode, float64(wall)/1e6, 100*pipe.StallFraction(), pipe.Segments, pipe.Passes)
	}
	v := &sec.Verdict
	v.SyncWallNs, v.SyncStallFrac = sec.Rows[0].WallNs, sec.Rows[0].StallFraction
	v.OverlapWallNs, v.OverlapStallFrac = sec.Rows[1].WallNs, sec.Rows[1].StallFraction
	v.Pass = v.OverlapWallNs < v.SyncWallNs && v.OverlapStallFrac < v.SyncStallFrac
	rep.OutOfCore = sec
	status := "pass"
	if !v.Pass {
		status = "FAIL"
	}
	fmt.Printf("out-of-core verdict: %s (load delay %v)\n", status, delay)
	return nil
}

// maxEngineCands caps the candidate list the engine-comparison rows count:
// the dense small-universe dataset joins thousands of frequent pairs, and
// the comparison needs identical bounded work per op, not an exhaustive C3.
const maxEngineCands = 4096

// runEngineRows benchmarks the same support-counting job — every k-candidate
// counted against the whole database — through the hash-tree kernel and the
// vertical popcount kernel, on a dense (small universe: every column a
// bitmap) and a sparse (paper-default universe: every column a tidlist)
// dataset. When both engines run, the dense pair becomes the engine verdict:
// vbit must beat the hash tree there.
func runEngineRows(rep *report, dsize, k int, engine string) error {
	specs := []struct {
		label string
		p     gen.Params
	}{
		// T12 over 60 items: density 0.2, far above the 1/64 bitmap cutoff.
		{"dense", gen.Params{N: 60, L: 30, T: 12, I: 4, D: dsize, Seed: 1}},
		// The paper-default universe: density 0.01, every column a tidlist.
		{"sparse", gen.Params{T: 10, I: 4, D: dsize, Seed: 1}},
	}
	ns := map[string]float64{} // label/engine → best ns/op
	for _, spec := range specs {
		d, err := gen.Generate(spec.p)
		if err != nil {
			return err
		}
		cands, err := kCandidates(d, k)
		if err != nil {
			return fmt.Errorf("%s dataset: %w", spec.label, err)
		}
		if len(cands) > maxEngineCands {
			cands = cands[:maxEngineCands]
		}
		if engine != "vbit" {
			tree, err := buildTree(d, k, cands)
			if err != nil {
				return err
			}
			counters := hashtree.NewCounters(hashtree.CounterPrivate, tree.NumCandidates(), 1)
			ctx := tree.NewCountCtx(counters, hashtree.CountOpts{ShortCircuit: true})
			name := "EngineKernel/" + spec.label + "/hashtree"
			best := bestOf3(name, "hashtree", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for t := 0; t < d.Len(); t++ {
						ctx.CountTransaction(d.Items(t))
					}
					ctx.Flush()
				}
			})
			ns[spec.label+"/hashtree"] = best.NsPerOp
			rep.Results = append(rep.Results, best)
			fmt.Printf("%-32s %12.0f ns/op %6d allocs/op (%d candidates)\n",
				name, best.NsPerOp, best.AllocsPerOp, len(cands))
		}
		if engine != "hashtree" {
			lay := vbit.NewLayout(d, 0)
			scr := lay.NewScratch()
			outSup := make([]int64, len(cands))
			name := "EngineKernel/" + spec.label + "/vbit"
			best := bestOf3(name, "vbit", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					lay.CountCandidates(scr, cands, outSup)
				}
			})
			ns[spec.label+"/vbit"] = best.NsPerOp
			rep.Results = append(rep.Results, best)
			fmt.Printf("%-32s %12.0f ns/op %6d allocs/op (%d bitmap / %d tidlist cols)\n",
				name, best.NsPerOp, best.AllocsPerOp, lay.DenseItems(), lay.SparseItems())
		}
	}
	if engine == "all" {
		v := &engineVerdict{
			DenseHashtreeNs:  ns["dense/hashtree"],
			DenseVBitNs:      ns["dense/vbit"],
			SparseHashtreeNs: ns["sparse/hashtree"],
			SparseVBitNs:     ns["sparse/vbit"],
		}
		v.Pass = v.DenseVBitNs > 0 && v.DenseVBitNs < v.DenseHashtreeNs
		rep.EngineVerdict = v
		status := "pass"
		if !v.Pass {
			status = "FAIL"
		}
		fmt.Printf("engine verdict: %s (dense vbit %.0f ns/op vs hashtree %.0f; sparse vbit %.0f vs hashtree %.0f)\n",
			status, v.DenseVBitNs, v.DenseHashtreeNs, v.SparseVBitNs, v.SparseHashtreeNs)
	}
	return nil
}

// gateAgainst fails when any kernel configuration regressed more than 10%
// against the committed snapshot. Allocations are compared absolutely (they
// are deterministic and hardware independent). ns/op is compared after
// normalizing by the median new/old ratio across all configurations: the
// median captures the speed difference between the baseline host and this
// one (plus any uniform load), so the gate trips only when one configuration
// slows down relative to the others — which is what a kernel regression
// looks like, and what survives CI-runner hardware churn. Configurations
// that disappeared fail, so a dropped benchmark cannot hide a regression.
// nsTol is the relative ns/op tolerance in percent (0 disables the timing
// gate for hosts too contended to time anything).
func gateAgainst(cur report, path string, nsTol float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old report
	if err := json.Unmarshal(buf, &old); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	curByName := map[string]result{}
	for _, r := range cur.Results {
		curByName[r.Name] = r
	}
	var ratios []float64
	for _, o := range old.Results {
		if n, ok := curByName[o.Name]; ok && o.NsPerOp > 0 {
			ratios = append(ratios, n.NsPerOp/o.NsPerOp)
		}
	}
	scale := 1.0
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		scale = ratios[len(ratios)/2]
	}
	var bad []string
	for _, o := range old.Results {
		n, ok := curByName[o.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: benchmark disappeared", o.Name))
			continue
		}
		if nsTol > 0 && o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*scale*(1+nsTol/100) {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op vs %.0f baseline ×%.2f host scale (+%.1f%% relative)",
				o.Name, n.NsPerOp, o.NsPerOp, scale, 100*(n.NsPerOp/(o.NsPerOp*scale)-1)))
		}
		if float64(n.AllocsPerOp) > float64(o.AllocsPerOp)*1.10+0.5 {
			bad = append(bad, fmt.Sprintf("%s: %d allocs/op vs %d",
				o.Name, n.AllocsPerOp, o.AllocsPerOp))
		}
	}
	if len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, "regression:", b)
		}
		return fmt.Errorf("%d kernel regression(s) vs %s", len(bad), path)
	}
	return nil
}

// scalingRow is one (dataset, procs, partition) measurement of the full
// miner. Wall-clock counting time is recorded for hosts with real cores; the
// modelled figures are deterministic and are what the verdict gates on.
type scalingRow struct {
	Dataset      string `json:"dataset"`
	Procs        int    `json:"procs"`
	Partition    string `json:"partition"`
	CountWallNs  int64  `json:"count_wall_ns"`
	ModelTime    int64  `json:"model_time"`
	MaxCountWork int64  `json:"max_count_work"`
	IdleWork     int64  `json:"idle_work"`
	Steals       int64  `json:"steals"`
}

type scalingVerdict struct {
	// Skewed database, highest processor count: dynamic idle and modelled
	// time must beat the static block partition.
	SkewedIdleBlock   int64 `json:"skewed_idle_block"`
	SkewedIdleDynamic int64 `json:"skewed_idle_dynamic"`
	SkewedModelBlock  int64 `json:"skewed_model_block"`
	SkewedModelDyn    int64 `json:"skewed_model_dynamic"`
	// Uniform database: dynamic modelled time must stay within 5% of block.
	UniformRegressPct float64 `json:"uniform_regress_pct"`
	Pass              bool    `json:"pass"`
}

type scalingReport struct {
	GoVersion string         `json:"go_version"`
	GOARCH    string         `json:"goarch"`
	NumCPU    int            `json:"num_cpu"`
	ChunkSize int            `json:"chunk_size"`
	Rows      []scalingRow   `json:"rows"`
	Verdict   scalingVerdict `json:"verdict"`
}

// runScaling measures miner scaling across processor counts and partition
// modes on a uniform and a skew-planted database.
func runScaling(out string, dsize int) error {
	const chunk = 16
	uniform := gen.Params{T: 10, I: 4, D: dsize, Seed: 1}
	skewed := uniform
	skewed.SkewFrac, skewed.SkewMult = 0.05, 8

	rep := scalingReport{
		GoVersion: runtime.Version(), GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(), ChunkSize: chunk,
	}
	parts := []ccpd.DBPartition{
		ccpd.PartitionBlock, ccpd.PartitionWorkload,
		ccpd.PartitionDynamic, ccpd.PartitionStealing,
	}
	procsList := []int{1, 2, 4, 8}
	idle := map[string]int64{}  // dataset/procs/part → idle work
	model := map[string]int64{} // dataset/procs/part → model time
	for _, spec := range []struct {
		label string
		p     gen.Params
	}{{"uniform", uniform}, {"skewed", skewed}} {
		d, err := gen.Generate(spec.p)
		if err != nil {
			return err
		}
		for _, procs := range procsList {
			for _, part := range parts {
				opts := ccpd.Options{
					Options: apriori.Options{
						AbsSupport: 10, ShortCircuit: true,
						Hash: hashtree.HashBitonic,
						// The heavy tail makes deep levels dense.
						MaxK: 4,
					},
					Procs: procs, Counter: hashtree.CounterPrivate,
					Balance: ccpd.BalanceBitonic,
					DBPart:  part, ChunkSize: chunk,
				}
				_, st, err := ccpd.Mine(d, opts)
				if err != nil {
					return err
				}
				var maxCount int64
				for i := range st.PerIter {
					maxCount += maxWork(st.PerIter[i].CountWork)
				}
				key := fmt.Sprintf("%s/%d/%s", spec.label, procs, part)
				idle[key] = st.CountIdleWork()
				model[key] = st.ModelTime()
				rep.Rows = append(rep.Rows, scalingRow{
					Dataset: spec.label, Procs: procs, Partition: part.String(),
					CountWallNs: st.TotalCount().Nanoseconds(),
					ModelTime:   st.ModelTime(), MaxCountWork: maxCount,
					IdleWork: st.CountIdleWork(), Steals: st.TotalSteals(),
				})
				fmt.Printf("%-8s procs=%d %-9s model=%-10d idle=%-10d steals=%d\n",
					spec.label, procs, part, st.ModelTime(), st.CountIdleWork(), st.TotalSteals())
			}
		}
	}

	top := procsList[len(procsList)-1]
	v := &rep.Verdict
	v.SkewedIdleBlock = idle[fmt.Sprintf("skewed/%d/%s", top, ccpd.PartitionBlock)]
	v.SkewedIdleDynamic = idle[fmt.Sprintf("skewed/%d/%s", top, ccpd.PartitionDynamic)]
	v.SkewedModelBlock = model[fmt.Sprintf("skewed/%d/%s", top, ccpd.PartitionBlock)]
	v.SkewedModelDyn = model[fmt.Sprintf("skewed/%d/%s", top, ccpd.PartitionDynamic)]
	ub := model[fmt.Sprintf("uniform/%d/%s", top, ccpd.PartitionBlock)]
	ud := model[fmt.Sprintf("uniform/%d/%s", top, ccpd.PartitionDynamic)]
	if ub > 0 {
		v.UniformRegressPct = 100 * (float64(ud)/float64(ub) - 1)
	}
	v.Pass = v.SkewedIdleDynamic < v.SkewedIdleBlock &&
		v.SkewedModelDyn < v.SkewedModelBlock &&
		v.UniformRegressPct < 5.0
	if err := writeJSON(out, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	if !v.Pass {
		return fmt.Errorf("scaling verdict failed: skewed idle %d vs %d, model %d vs %d, uniform regress %.2f%%",
			v.SkewedIdleDynamic, v.SkewedIdleBlock, v.SkewedModelDyn, v.SkewedModelBlock, v.UniformRegressPct)
	}
	fmt.Println("scaling verdict: pass")
	return nil
}

func maxWork(v []int64) int64 {
	var m int64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func writeJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
