// Command benchjson runs the counting-kernel microbenchmarks through
// testing.Benchmark and writes a machine-readable snapshot (BENCH_counting.json
// by default) with ns/op and allocs/op per configuration. CI runs it on every
// push so kernel-performance and allocation regressions show up as an
// artifact diff rather than a buried log line.
//
// Usage:
//
//	benchjson [-o BENCH_counting.json] [-d 2000]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/hashtree"
	"repro/internal/itemset"
)

// result is one benchmark configuration's measurement.
type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

type report struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	// TxPerOp is how many transactions one benchmark op counts; ns_per_op /
	// tx_per_op gives per-transaction cost.
	TxPerOp int      `json:"tx_per_op"`
	K       int      `json:"k"`
	Results []result `json:"results"`
}

func buildTree(d *db.Database, k int) (*hashtree.Tree, error) {
	res, err := apriori.Mine(d, apriori.Options{AbsSupport: 5, MaxK: k})
	if err != nil {
		return nil, err
	}
	if k >= len(res.ByK) {
		return nil, fmt.Errorf("no frequent %d-itemsets", k-1)
	}
	var prev []itemset.Itemset
	for _, f := range res.ByK[k-1] {
		prev = append(prev, f.Items)
	}
	cands, _, _ := apriori.GenerateCandidates(prev, false)
	if len(cands) == 0 {
		return nil, fmt.Errorf("no %d-candidates", k)
	}
	return hashtree.Build(hashtree.Config{
		K: k, Threshold: 8, Hash: hashtree.HashBitonic, NumItems: d.NumItems(),
	}, cands)
}

func main() {
	out := flag.String("o", "BENCH_counting.json", "output file")
	dsize := flag.Int("d", 2000, "transactions in the benchmark database")
	flag.Parse()

	d, err := gen.Generate(gen.Params{T: 10, I: 4, D: *dsize, Seed: 1})
	if err != nil {
		fatal(err)
	}
	const k = 3
	tree, err := buildTree(d, k)
	if err != nil {
		fatal(err)
	}

	rep := report{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		TxPerOp:   d.Len(),
		K:         k,
	}
	for _, mode := range []hashtree.CounterMode{
		hashtree.CounterLocked, hashtree.CounterAtomic, hashtree.CounterPrivate,
	} {
		for _, batch := range []bool{false, true} {
			name := "CountKernel/" + mode.String()
			if batch {
				name += "-batched"
			}
			counters := hashtree.NewCounters(mode, tree.NumCandidates(), 1)
			ctx := tree.NewCountCtx(counters, hashtree.CountOpts{
				ShortCircuit: true, BatchUpdates: batch,
			})
			br := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for t := 0; t < d.Len(); t++ {
						ctx.CountTransaction(d.Items(t))
					}
					ctx.Flush()
				}
			})
			rep.Results = append(rep.Results, result{
				Name:        name,
				NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
				AllocsPerOp: br.AllocsPerOp(),
				BytesPerOp:  br.AllocedBytesPerOp(),
				Iterations:  br.N,
			})
			fmt.Printf("%-32s %12.0f ns/op %6d allocs/op\n",
				name, float64(br.T.Nanoseconds())/float64(br.N), br.AllocsPerOp())
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
