// Command armlint runs the repo's static analysis suite (internal/lint)
// over the module: nine annotation-driven analyzers — sharing a module-wide
// call graph — enforcing the concurrency, zero-allocation, determinism,
// int-width, cancellation-polling and atomic-write invariants of the
// parallel mining kernels. Built entirely on the standard library's
// go/parser, go/ast and go/types — no external tooling.
//
// Usage:
//
//	armlint [-json] [-analyzers a,b] [patterns...]
//
// Patterns follow the go tool's shape: "./..." (the default) analyzes every
// non-test package of the enclosing module, "./internal/..." a subtree,
// "./internal/sched" one package. Test files and testdata trees are not
// analyzed. Exit status: 0 clean, 1 findings, 2 load or usage error.
//
// Findings print as file:line:col: analyzer: message; -json emits the same
// list as a machine-readable report (the CI artifact) under the stable
// schema "armlint/v2": module, schema, per-analyzer name/findings/timing,
// the findings, and the total count. Consumers should tolerate added
// fields; removed or renamed fields bump the schema string.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("armlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := lint.All()
	if *names != "" {
		analyzers = analyzers[:0]
		for _, n := range strings.Split(*names, ",") {
			a := lint.ByName(strings.TrimSpace(n))
			if a == nil {
				fmt.Fprintf(stderr, "armlint: unknown analyzer %q (have %s)\n", n, analyzerNames())
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "armlint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	findings, timings := lint.RunTimed(mod, analyzers)
	findings = filterByPatterns(findings, cwd, patterns)
	relativize(findings, cwd)

	if *jsonOut {
		report := struct {
			Schema    string         `json:"schema"`
			Module    string         `json:"module"`
			Analyzers []lint.Timing  `json:"analyzers"`
			Findings  []lint.Finding `json:"findings"`
			Count     int            `json:"count"`
		}{"armlint/v2", mod.Path, timings, findings, len(findings)}
		if report.Findings == nil {
			report.Findings = []lint.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "armlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) == 0 {
			fmt.Fprintln(stdout, "armlint: clean")
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

func analyzerNames() string {
	var names []string
	for _, a := range lint.All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// filterByPatterns keeps findings whose file falls under one of the go-style
// package patterns, resolved relative to cwd.
func filterByPatterns(findings []lint.Finding, cwd string, patterns []string) []lint.Finding {
	match := func(file string) bool {
		abs := file
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, abs)
		}
		dir := filepath.Dir(abs)
		for _, pat := range patterns {
			if base, ok := strings.CutSuffix(pat, "/..."); ok {
				absBase := filepath.Join(cwd, filepath.FromSlash(base))
				if dir == absBase || strings.HasPrefix(dir, absBase+string(filepath.Separator)) {
					return true
				}
				continue
			}
			if dir == filepath.Join(cwd, filepath.FromSlash(pat)) {
				return true
			}
		}
		return false
	}
	out := findings[:0]
	for _, f := range findings {
		if match(f.File) {
			out = append(out, f)
		}
	}
	return out
}

// relativize rewrites finding paths relative to cwd for readable output.
func relativize(findings []lint.Finding, cwd string) {
	for i := range findings {
		if rel, err := filepath.Rel(cwd, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}
}
