// Speedup study: runs fully optimized CCPD at increasing processor counts
// and prints the modelled parallel speed-up (max-per-processor work) next
// to the optimization gains — a miniature of Figs. 8 and 11.
package main

import (
	"fmt"
	"log"

	armine "repro"
)

func mineModel(d *armine.Database, procs int, comp, tree, sc bool) int64 {
	opts := armine.ParallelOptions{
		Options: armine.MiningOptions{MinSupport: 0.005, ShortCircuit: sc},
		Procs:   procs, Counter: armine.CounterPrivate,
		AdaptiveMinUnits: 1,
	}
	if comp {
		opts.Balance = armine.BalanceBitonic
	}
	if tree {
		opts.Hash = armine.HashBitonic
	}
	_, stats, err := armine.MineCCPD(d, opts)
	if err != nil {
		log.Fatal(err)
	}
	return stats.ModelTime()
}

func main() {
	d, err := armine.Generate(armine.GenParams{T: 10, I: 6, D: 8000, Seed: 19})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d transactions (T10.I6), 0.5%% support\n\n", d.Len())

	// Optimization gains at 4 processors (Fig. 8 in miniature).
	base := mineModel(d, 4, false, false, false)
	fmt.Println("optimization gains at 4 processors (modelled time vs unoptimized):")
	fmt.Printf("  COMP        %5.1f%%\n", 100*(1-float64(mineModel(d, 4, true, false, false))/float64(base)))
	fmt.Printf("  TREE        %5.1f%%\n", 100*(1-float64(mineModel(d, 4, false, true, false))/float64(base)))
	fmt.Printf("  COMP-TREE   %5.1f%%\n", 100*(1-float64(mineModel(d, 4, true, true, false))/float64(base)))
	fmt.Printf("  +SHORT-CIRC %5.1f%%\n", 100*(1-float64(mineModel(d, 4, true, true, true))/float64(base)))

	// Scaling curve (Fig. 11 in miniature).
	fmt.Println("\nCCPD speed-up (all optimizations, modelled):")
	t1 := mineModel(d, 1, true, true, true)
	for _, procs := range []int{1, 2, 4, 8, 12} {
		tp := mineModel(d, procs, true, true, true)
		fmt.Printf("  P=%-2d  speedup %.2f\n", procs, float64(t1)/float64(tp))
	}
}
