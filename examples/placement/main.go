// Placement study: runs the Section 5 memory placement policies over one
// mining workload and prints the simulated cache behaviour per policy —
// normalized time, miss rate, and true/false sharing invalidations —
// a miniature of Figs. 12–13.
package main

import (
	"fmt"
	"log"

	armine "repro"
)

func main() {
	d, err := armine.Generate(armine.GenParams{T: 12, I: 4, D: 4000, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	for _, procs := range []int{1, 4} {
		fmt.Printf("=== %d processor(s), 0.5%% support ===\n", procs)
		res, err := armine.RunPlacementStudy(d, armine.StudyOptions{
			Mining: armine.MiningOptions{
				MinSupport:   0.005,
				Hash:         armine.HashBitonic,
				ShortCircuit: true,
			},
			Procs:      procs,
			MaxTraceTx: 300,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %10s %9s %12s %12s %12s\n",
			"policy", "normtime", "missrate", "invals", "false-shr", "true-shr")
		for _, pr := range res.Policies {
			fmt.Printf("%-8s %10.3f %8.1f%% %12d %12d %12d\n",
				pr.Policy, pr.Normalized, pr.Totals.MissRate()*100,
				pr.Totals.InvalidationsRecv,
				pr.Totals.FalseSharingInvals, pr.Totals.TrueSharingInvals)
		}
		fmt.Println()
	}
	fmt.Println("expected shape: SPP cuts the base CCPD time roughly in half;")
	fmt.Println("GPP wins on the biggest trees; L-* remove false sharing of")
	fmt.Println("read-only data; LCA-GPP eliminates counter invalidations entirely.")
}
