// Clickstream analysis with the Section 8 extension tasks: sequential
// patterns over user event streams, multi-level associations over a page
// taxonomy, and quantitative associations over session statistics — all
// driven by the same mining machinery as the basket case.
package main

import (
	"fmt"
	"log"
	"math/rand"

	armine "repro"
)

func main() {
	sequentialPatterns()
	taxonomyMining()
	quantitativeMining()
}

func sequentialPatterns() {
	fmt.Println("=== sequential patterns (user event streams) ===")
	data, planted, err := armine.GenerateSequences(armine.SequenceGenParams{
		C: 3000, SeqLen: 12, NP: 15, PatLen: 3, N: 200, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := armine.MineSequences(data, armine.SequenceOptions{
		MinSupport: 0.03, Procs: 4, Hash: armine.SeqHashBitonic,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("customers: %d, planted patterns: %d\n", data.Len(), len(planted))
	for l := 1; l < len(res.ByLen); l++ {
		fmt.Printf("  length %d: %d frequent patterns\n", l, len(res.ByLen[l]))
	}
	for l := len(res.ByLen) - 1; l >= 2; l-- {
		if len(res.ByLen[l]) > 0 {
			f := res.ByLen[l][0]
			fmt.Printf("  deepest example: %v (%d customers)\n\n", f.Pattern, f.Count)
			return
		}
	}
	fmt.Println()
}

func taxonomyMining() {
	fmt.Println("=== multi-level associations (page taxonomy) ===")
	// 120 leaf pages under a 2-level category tree.
	tx, err := armine.GenerateTaxonomy(armine.TaxonomyGenParams{
		NumLeaves: 120, Fanout: 6, Levels: 2, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	d, err := armine.Generate(armine.GenParams{N: 120, L: 40, T: 6, I: 3, D: 4000, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	res, err := armine.MineGeneralized(d, tx, armine.TaxonomyOptions{
		Mining: armine.MiningOptions{MinSupport: 0.02}, Procs: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generalized frequent itemsets: %d (%d ancestor pairs pruned)\n",
		res.NumFrequent(), res.PrunedAncestorPairs)
	shown := 0
	for _, f := range res.ByK[2] {
		// Show only itemsets involving a category (item ≥ 120).
		if f.Items[1] >= 120 {
			fmt.Printf("  %v  support %d\n", f.Items, f.Count)
			if shown++; shown == 3 {
				break
			}
		}
	}
	fmt.Println()
}

func quantitativeMining() {
	fmt.Println("=== quantitative associations (session statistics) ===")
	rng := rand.New(rand.NewSource(13))
	const rows = 3000
	dur := make([]float64, rows)   // session duration
	pages := make([]float64, rows) // pages viewed (tracks duration)
	conv := make([]float64, rows)  // converted? (long sessions convert)
	for i := range dur {
		d := rng.ExpFloat64() * 10
		dur[i] = d
		pages[i] = d/2 + rng.Float64()*3
		if d > 12 && rng.Float64() < 0.7 {
			conv[i] = 1
		}
	}
	tab := &armine.QuantTable{Cols: []armine.QuantColumn{
		{Name: "duration", Kind: armine.Numeric, Values: dur},
		{Name: "pages", Kind: armine.Numeric, Values: pages},
		{Name: "converted", Kind: armine.Categorical, Values: conv},
	}}
	res, err := armine.MineQuantitative(tab, armine.QuantOptions{
		Intervals: 4, MaxMerge: 2,
		Mining: armine.MiningOptions{MinSupport: 0.05},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frequent quantitative pairs: %d; examples:\n", len(res.Frequent(2)))
	for i, q := range res.Frequent(2) {
		if i == 4 {
			break
		}
		fmt.Printf("  %v + %v  support %d\n", q.Predicates[0], q.Predicates[1], q.Count)
	}
}
