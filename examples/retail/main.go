// Retail basket analysis: the paper's motivating scenario. Builds a small
// hand-labelled store catalogue, synthesizes purchase histories around
// planted "shopping missions" (the Quest model), and walks through the
// classic questions: what sells together, what implies what, and how the
// optimized miner's iterations behave — including the candidate explosion
// at k=2 and the pruning that follows (Figs. 6–7 in miniature).
package main

import (
	"fmt"
	"log"
	"strings"

	armine "repro"
)

// catalogue gives the first few item ids human names so rules read like a
// store report; everything beyond stays numeric.
var catalogue = []string{
	"bread", "milk", "butter", "eggs", "cheese", "beer", "chips", "salsa",
	"diapers", "wipes", "coffee", "filters", "pasta", "sauce", "wine",
}

func name(it armine.Item) string {
	if int(it) < len(catalogue) {
		return catalogue[it]
	}
	return fmt.Sprintf("sku%d", it)
}

func describe(s armine.Itemset) string {
	parts := make([]string, s.K())
	for i, it := range s {
		parts[i] = name(it)
	}
	return strings.Join(parts, "+")
}

func main() {
	// Skewed catalogue of 300 SKUs; shoppers buy ~8 items per trip.
	d, err := armine.Generate(armine.GenParams{
		N: 300, L: 120, T: 8, I: 3, D: 8000, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store log: %d baskets over %d SKUs\n\n", d.Len(), d.NumItems())

	// Mine at 1% support with all paper optimizations, sequentially (this
	// is the single-analyst workstation case).
	res, err := armine.MineSequential(d, 0.01)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("level-wise pass (candidates -> frequent):")
	for _, it := range res.Iters {
		fmt.Printf("  k=%d: %6d candidates -> %5d frequent", it.K, it.Candidates, it.Frequent)
		if it.K >= 2 {
			fmt.Printf("   (hash tree %6.1f KB, %d pruned by subset test)",
				float64(it.TreeStats.Bytes)/1024, it.PrunedBySubset)
		}
		fmt.Println()
	}

	fmt.Println("\nbest-selling pairs:")
	shown := 0
	for _, f := range res.ByK[2] {
		fmt.Printf("  %-28s %5d baskets\n", describe(f.Items), f.Count)
		if shown++; shown == 8 {
			break
		}
	}

	rules := armine.GenerateRules(res, armine.RuleOptions{
		MinConfidence: 0.75, DBSize: int64(d.Len()), MaxConsequent: 1,
	})
	fmt.Printf("\nactionable rules (>=75%% confidence, single consequent): %d\n", len(rules))
	for i, r := range rules {
		if i == 10 {
			break
		}
		fmt.Printf("  if {%s} then {%s}   conf %.0f%%  lift %.2f  (%d baskets)\n",
			describe(r.Antecedent), describe(r.Consequent),
			r.Confidence*100, r.Lift, r.Support)
	}
}
