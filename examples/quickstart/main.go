// Quickstart: generate a small synthetic basket database, mine frequent
// itemsets with the fully optimized parallel CCPD algorithm, and derive
// association rules — the end-to-end flow of the public API.
package main

import (
	"fmt"
	"log"

	armine "repro"
)

func main() {
	// 1. Synthetic retail data: 5,000 transactions, avg 10 items each,
	//    drawn from 1,000 items via 2,000 planted patterns of avg size 4.
	d, err := armine.Generate(armine.GenParams{T: 10, I: 4, D: 5000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d transactions, %d items, avg length %.1f\n",
		d.Len(), d.NumItems(), d.AvgLen())

	// 2. Mine at 0.5% minimum support on 4 simulated processors.
	res, stats, err := armine.MineParallel(d, 0.005, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frequent itemsets: %d (min support %d transactions)\n",
		res.NumFrequent(), res.MinCount)
	for k := 1; k < len(res.ByK); k++ {
		if n := len(res.ByK[k]); n > 0 {
			fmt.Printf("  %d-itemsets: %d\n", k, n)
		}
	}
	fmt.Printf("mining time: %v (support counting %v)\n", stats.Total, stats.TotalCount())

	// 3. Rules at 90% confidence.
	rules := armine.GenerateRules(res, armine.RuleOptions{MinConfidence: 0.9, DBSize: int64(d.Len())})
	fmt.Printf("rules at >=90%% confidence: %d; top 5:\n", len(rules))
	for i, r := range rules {
		if i == 5 {
			break
		}
		fmt.Printf("  %v (lift %.2f)\n", r, r.Lift)
	}
}
